package train

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Dataset is the minimal data access contract the trainer and metric
// helpers need. internal/gtsrb implements it; tests use in-memory stubs.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th image as a CHW tensor and its class label.
	// Implementations may return a shared/stored tensor; callers must not
	// mutate it.
	Sample(i int) (*tensor.Tensor, int)
}

// evalBatchSize is the mini-batch each evaluation worker scores through
// one batched forward pass. Sixteen 32×32 RGB images keep the per-worker
// im2col scratch a few MB while amortizing per-image dispatch overhead.
const evalBatchSize = 16

// TopKCorrect reports whether label is among the k highest-probability
// entries of probs.
func TopKCorrect(probs []float64, label, k int) bool {
	for _, idx := range mathx.TopKIndices(probs, k) {
		if idx == label {
			return true
		}
	}
	return false
}

// Metrics summarizes classifier performance over a dataset.
type Metrics struct {
	// N is the number of evaluated samples.
	N int
	// Top1 and Top5 are accuracy fractions in [0, 1].
	Top1, Top5 float64
	// MeanConfidence is the average probability assigned to the predicted
	// class — the "confidence" quantity the paper's figures report.
	MeanConfidence float64
	// MeanTrueProb is the average probability assigned to the correct class.
	MeanTrueProb float64
}

// String renders the metrics in a single log-friendly line.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d top1=%.2f%% top5=%.2f%% conf=%.2f%%",
		m.N, 100*m.Top1, 100*m.Top5, 100*m.MeanConfidence)
}

// BatchTransform maps one evaluation mini-batch to the tensors actually
// scored: imgs are the raw samples, idx their dataset indices (parallel
// slices). It is the batched counterpart of the per-image transform hook
// and is what routes evaluation through Filter.ApplyBatch /
// Pipeline.DeliverBatch. The returned slice must have len(imgs) entries;
// entry i replaces imgs[i]. Implementations must be pure per sample so
// parallel evaluation stays bit-identical to serial.
type BatchTransform func(imgs []*tensor.Tensor, idx []int) []*tensor.Tensor

// perImage adapts a per-image transform to the batched contract.
func perImage(transform func(*tensor.Tensor, int) *tensor.Tensor) BatchTransform {
	if transform == nil {
		return nil
	}
	return func(imgs []*tensor.Tensor, idx []int) []*tensor.Tensor {
		out := make([]*tensor.Tensor, len(imgs))
		for i, img := range imgs {
			out[i] = transform(img, idx[i])
		}
		return out
	}
}

// Evaluate runs the network over every sample of ds (optionally transformed)
// and returns aggregate metrics. transform may be nil; otherwise each image
// is passed through it before inference — the hook the experiment harness
// uses to route evaluation through attacks, acquisition and filters.
//
// Evaluation is fanned out over the process-wide parallel.Workers() pool;
// transform, when given, must therefore be safe for concurrent calls
// (pure functions of the image and index — every filter in this
// repository qualifies; stateful acquisition models do not). Results are
// bit-identical to a serial run regardless of worker count.
func Evaluate(net *nn.Network, ds Dataset, transform func(*tensor.Tensor, int) *tensor.Tensor) Metrics {
	return EvaluateWorkers(net, ds, transform, 0)
}

// EvaluateBatch is Evaluate with a batched transform: each evaluation
// mini-batch passes through transform as a whole, so filter stages run
// their ApplyBatch path instead of image-at-a-time Apply.
func EvaluateBatch(net *nn.Network, ds Dataset, transform BatchTransform) Metrics {
	return EvaluateBatchWorkers(net, ds, transform, 0)
}

// EvaluateBatchWorkers is EvaluateBatch with an explicit worker count
// (<= 0 selects parallel.Workers(); 1 runs serially).
func EvaluateBatchWorkers(net *nn.Network, ds Dataset, transform BatchTransform, workers int) Metrics {
	return EvaluateOnBatch(evalNets(net, ds, workers), ds, transform)
}

// evalNets builds the worker networks for one evaluation: net itself
// plus weight-sharing clones.
func evalNets(net *nn.Network, ds Dataset, workers int) []*nn.Network {
	n := ds.Len()
	if workers <= 0 {
		workers = parallel.Workers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	nets := make([]*nn.Network, workers)
	nets[0] = net
	for w := 1; w < workers; w++ {
		nets[w] = net.Clone()
	}
	return nets
}

// EvaluateWorkers is Evaluate with an explicit worker count (<= 0 selects
// parallel.Workers(); 1 runs serially on the calling goroutine). Workers
// beyond the first run on weight-sharing clones of net (nn.Network.Clone),
// so net itself is only ever used from one goroutine at a time. Callers
// evaluating many datasets against the same network should prefer
// EvaluateOn with a reused clone set — this convenience clones afresh
// per call.
func EvaluateWorkers(net *nn.Network, ds Dataset, transform func(*tensor.Tensor, int) *tensor.Tensor, workers int) Metrics {
	if ds.Len() == 0 {
		return Metrics{}
	}
	return EvaluateOnBatch(evalNets(net, ds, workers), ds, perImage(transform))
}

// EvaluateOn evaluates using caller-supplied worker networks — nets[0]
// plus weight-sharing clones of it — so repeated evaluations (the Fig. 7/9
// curve sweeps run one per attack × scenario × filter cell) amortize the
// clone allocations instead of re-cloning per call. nets must be
// non-empty; len(nets) bounds the worker count, and each entry is only
// ever used by one goroutine per call.
func EvaluateOn(nets []*nn.Network, ds Dataset, transform func(*tensor.Tensor, int) *tensor.Tensor) Metrics {
	return EvaluateOnBatch(nets, ds, perImage(transform))
}

// EvaluateOnBatch is EvaluateOn with a batched transform hook: each
// worker mini-batch is handed to transform as a whole (raw samples plus
// their dataset indices) before the batched forward pass — the path the
// Fig. 7/9 curve sweeps use to run filter delivery through
// Pipeline.DeliverBatch. transform may be nil (clean evaluation).
func EvaluateOnBatch(nets []*nn.Network, ds Dataset, transform BatchTransform) Metrics {
	if len(nets) == 0 {
		panic("train: EvaluateOnBatch needs at least one network")
	}
	var m Metrics
	n := ds.Len()
	if n == 0 {
		return m
	}
	// Samples are scored in mini-batches of evalBatchSize per worker: one
	// batched forward pass (nn.Network.ProbsBatch) replaces evalBatchSize
	// batch-of-1 dispatches. Batched rows are bit-identical to single-image
	// Probs calls, and the per-sample results land in index-addressed slots
	// with the floating-point reduction running serially in sample order —
	// so the metrics are bit-identical to a serial, unbatched evaluation
	// regardless of worker count.
	chunks := (n + evalBatchSize - 1) / evalBatchSize
	workers := len(nets)
	if workers > chunks {
		workers = chunks
	}
	type sampleStat struct {
		top1, top5     bool
		conf, trueProb float64
	}
	stats := make([]sampleStat, n)
	imgs := make([][]*tensor.Tensor, workers)
	labels := make([][]int, workers)
	for w := range imgs {
		imgs[w] = make([]*tensor.Tensor, 0, evalBatchSize)
		labels[w] = make([]int, 0, evalBatchSize)
	}
	idxs := make([][]int, workers)
	for w := range idxs {
		idxs[w] = make([]int, 0, evalBatchSize)
	}
	parallel.ForWorker(workers, chunks, func(worker, chunk int) {
		lo := chunk * evalBatchSize
		hi := lo + evalBatchSize
		if hi > n {
			hi = n
		}
		batch, lab, idx := imgs[worker][:0], labels[worker][:0], idxs[worker][:0]
		for i := lo; i < hi; i++ {
			img, label := ds.Sample(i)
			batch = append(batch, img)
			lab = append(lab, label)
			idx = append(idx, i)
		}
		if transform != nil {
			batch = transform(batch, idx)
			if len(batch) != hi-lo {
				panic("train: batch transform changed the batch length")
			}
		}
		rows := nets[worker].ProbsBatch(batch)
		for i := lo; i < hi; i++ {
			probs, label := rows[i-lo], lab[i-lo]
			pred := mathx.ArgMax(probs)
			stats[i] = sampleStat{
				top1:     pred == label,
				top5:     TopKCorrect(probs, label, 5),
				conf:     probs[pred],
				trueProb: probs[label],
			}
		}
	})

	var top1, top5, conf, trueProb float64
	for i := range stats {
		if stats[i].top1 {
			top1++
		}
		if stats[i].top5 {
			top5++
		}
		conf += stats[i].conf
		trueProb += stats[i].trueProb
	}
	inv := 1 / float64(n)
	return Metrics{
		N:              n,
		Top1:           top1 * inv,
		Top5:           top5 * inv,
		MeanConfidence: conf * inv,
		MeanTrueProb:   trueProb * inv,
	}
}

// Confusion accumulates a confusion matrix over a dataset. Rows are true
// classes, columns predictions. Predictions run in batched forward passes.
func Confusion(net *nn.Network, ds Dataset, classes int) [][]int {
	mat := make([][]int, classes)
	for i := range mat {
		mat[i] = make([]int, classes)
	}
	n := ds.Len()
	imgs := make([]*tensor.Tensor, 0, evalBatchSize)
	labs := make([]int, 0, evalBatchSize)
	for lo := 0; lo < n; lo += evalBatchSize {
		hi := lo + evalBatchSize
		if hi > n {
			hi = n
		}
		imgs, labs = imgs[:0], labs[:0]
		for i := lo; i < hi; i++ {
			img, label := ds.Sample(i)
			imgs = append(imgs, img)
			labs = append(labs, label)
		}
		preds, _ := net.PredictBatch(imgs)
		for i, pred := range preds {
			label := labs[i]
			if label >= 0 && label < classes && pred >= 0 && pred < classes {
				mat[label][pred]++
			}
		}
	}
	return mat
}
