package train

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Dataset is the minimal data access contract the trainer and metric
// helpers need. internal/gtsrb implements it; tests use in-memory stubs.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th image as a CHW tensor and its class label.
	// Implementations may return a shared/stored tensor; callers must not
	// mutate it.
	Sample(i int) (*tensor.Tensor, int)
}

// TopKCorrect reports whether label is among the k highest-probability
// entries of probs.
func TopKCorrect(probs []float64, label, k int) bool {
	for _, idx := range mathx.TopKIndices(probs, k) {
		if idx == label {
			return true
		}
	}
	return false
}

// Metrics summarizes classifier performance over a dataset.
type Metrics struct {
	// N is the number of evaluated samples.
	N int
	// Top1 and Top5 are accuracy fractions in [0, 1].
	Top1, Top5 float64
	// MeanConfidence is the average probability assigned to the predicted
	// class — the "confidence" quantity the paper's figures report.
	MeanConfidence float64
	// MeanTrueProb is the average probability assigned to the correct class.
	MeanTrueProb float64
}

// String renders the metrics in a single log-friendly line.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d top1=%.2f%% top5=%.2f%% conf=%.2f%%",
		m.N, 100*m.Top1, 100*m.Top5, 100*m.MeanConfidence)
}

// Evaluate runs the network over every sample of ds (optionally transformed)
// and returns aggregate metrics. transform may be nil; otherwise each image
// is passed through it before inference — the hook the experiment harness
// uses to route evaluation through attacks, acquisition and filters.
func Evaluate(net *nn.Network, ds Dataset, transform func(*tensor.Tensor, int) *tensor.Tensor) Metrics {
	var m Metrics
	n := ds.Len()
	if n == 0 {
		return m
	}
	var top1, top5, conf, trueProb float64
	for i := 0; i < n; i++ {
		img, label := ds.Sample(i)
		if transform != nil {
			img = transform(img, i)
		}
		probs := net.Probs(img)
		pred := mathx.ArgMax(probs)
		if pred == label {
			top1++
		}
		if TopKCorrect(probs, label, 5) {
			top5++
		}
		conf += probs[pred]
		trueProb += probs[label]
	}
	inv := 1 / float64(n)
	return Metrics{
		N:              n,
		Top1:           top1 * inv,
		Top5:           top5 * inv,
		MeanConfidence: conf * inv,
		MeanTrueProb:   trueProb * inv,
	}
}

// Confusion accumulates a confusion matrix over a dataset. Rows are true
// classes, columns predictions.
func Confusion(net *nn.Network, ds Dataset, classes int) [][]int {
	mat := make([][]int, classes)
	for i := range mat {
		mat[i] = make([]int, classes)
	}
	for i := 0; i < ds.Len(); i++ {
		img, label := ds.Sample(i)
		pred, _ := net.Predict(img)
		if label >= 0 && label < classes && pred >= 0 && pred < classes {
			mat[label][pred]++
		}
	}
	return mat
}
