package train

import (
	"fmt"
	"io"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size (clamped to the dataset size).
	BatchSize int
	// Schedule supplies the per-epoch learning rate.
	Schedule Schedule
	// Optimizer defaults to Adam when nil.
	Optimizer Optimizer
	// Loss defaults to cross-entropy when nil.
	Loss nn.Loss
	// Seed drives shuffling; runs with equal seeds are identical.
	Seed uint64
	// ClipNorm, if positive, clips the global gradient norm each step.
	ClipNorm float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// EpochStats records the outcome of one training epoch.
type EpochStats struct {
	Epoch     int
	MeanLoss  float64
	TrainTop1 float64
	LR        float64
}

// Result summarizes a training run.
type Result struct {
	Epochs []EpochStats
}

// FinalLoss returns the mean loss of the last epoch (0 if none ran).
func (r Result) FinalLoss() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].MeanLoss
}

// Fit trains the network on ds according to cfg and returns per-epoch
// statistics. It is fully deterministic for a fixed seed.
func Fit(net *nn.Network, ds Dataset, cfg Config) (Result, error) {
	if ds.Len() == 0 {
		return Result{}, fmt.Errorf("train: empty dataset")
	}
	if cfg.Epochs <= 0 {
		return Result{}, fmt.Errorf("train: epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return Result{}, fmt.Errorf("train: batch size must be positive, got %d", cfg.BatchSize)
	}
	opt := cfg.Optimizer
	if opt == nil {
		opt = NewAdam()
	}
	loss := cfg.Loss
	if loss == nil {
		loss = nn.CrossEntropy{}
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = ConstantLR(1e-3)
	}
	rng := mathx.NewRNG(cfg.Seed)
	n := ds.Len()
	bs := cfg.BatchSize
	if bs > n {
		bs = n
	}

	var res Result
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := sched.LR(epoch)
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var correct, seen int
		batches := 0
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			imgs := make([]*tensor.Tensor, 0, end-start)
			labels := make([]int, 0, end-start)
			for _, idx := range order[start:end] {
				img, label := ds.Sample(idx)
				imgs = append(imgs, img)
				labels = append(labels, label)
			}
			batch := tensor.Stack(imgs)
			net.ZeroGrads()
			logits := net.Forward(batch, true)
			lv, dlogits := loss.Eval(logits, labels)
			net.Backward(dlogits)
			if cfg.ClipNorm > 0 {
				GradClip(net.Params(), cfg.ClipNorm)
			}
			opt.Step(net.Params(), lr)
			lossSum += lv
			batches++
			// Batch top-1 from the already-computed logits.
			for r := 0; r < logits.Dim(0); r++ {
				if mathx.ArgMax(logits.Row(r).Data()) == labels[r] {
					correct++
				}
			}
			seen += len(labels)
		}
		stats := EpochStats{
			Epoch:     epoch,
			MeanLoss:  lossSum / float64(batches),
			TrainTop1: float64(correct) / float64(seen),
			LR:        lr,
		}
		res.Epochs = append(res.Epochs, stats)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  top1 %.2f%%  lr %.2e\n",
				epoch, stats.MeanLoss, 100*stats.TrainTop1, lr)
		}
	}
	return res, nil
}
