// Package train provides optimizers, learning-rate schedules and a
// mini-batch training loop for the nn substrate, along with classification
// metrics (top-1/top-k accuracy, confusion counts) used throughout the
// experiment harness.
package train

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Name identifies the optimizer in logs.
	Name() string
	// Step applies one update using the current gradients and the given
	// learning rate, then leaves gradients untouched (the trainer zeroes
	// them).
	Step(params []*nn.Param, lr float64)
}

// SGD is plain stochastic gradient descent: w -= lr * g.
type SGD struct{}

// Name implements Optimizer.
func (SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (SGD) Step(params []*nn.Param, lr float64) {
	for _, p := range params {
		p.Value.AddScaled(-lr, p.Grad)
	}
}

// Momentum is SGD with classical momentum: v = mu*v - lr*g; w += v.
type Momentum struct {
	Mu       float64
	velocity map[*nn.Param][]float64
}

// NewMomentum constructs a momentum optimizer with coefficient mu
// (typically 0.9).
func NewMomentum(mu float64) *Momentum {
	return &Momentum{Mu: mu, velocity: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return fmt.Sprintf("momentum(%.2f)", m.Mu) }

// Step implements Optimizer.
func (m *Momentum) Step(params []*nn.Param, lr float64) {
	for _, p := range params {
		v, ok := m.velocity[p]
		if !ok {
			v = make([]float64, p.Value.Len())
			m.velocity[p] = v
		}
		vd, wd, gd := v, p.Value.Data(), p.Grad.Data()
		for i := range vd {
			vd[i] = m.Mu*vd[i] - lr*gd[i]
			wd[i] += vd[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction — the
// default for every experiment profile because it trains the small VGG
// quickly without per-topology tuning.
type Adam struct {
	Beta1, Beta2, Eps float64
	t                 int
	m, v              map[*nn.Param][]float64
}

// NewAdam constructs an Adam optimizer with the canonical defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam() *Adam {
	return &Adam{
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param, lr float64) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, p.Value.Len())
			a.m[p] = m
			a.v[p] = make([]float64, p.Value.Len())
		}
		v := a.v[p]
		wd, gd := p.Value.Data(), p.Grad.Data()
		for i := range m {
			g := gd[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			wd[i] -= lr * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// GradClip rescales all gradients so their global L2 norm does not exceed
// maxNorm. Returns the pre-clip norm. A maxNorm <= 0 disables clipping.
func GradClip(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		n := p.Grad.L2Norm()
		total += n * n
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
