package detect

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testNet returns a small deterministic (untrained) CNN: the detect
// package's contracts — batching equivalence, calibration quantiles,
// ROC shape — hold for any fixed network, so skipping training keeps
// the fixture fast.
var (
	netOnce sync.Once
	netInst *nn.Network
	netErr  error
)

func testNet(t testing.TB) *nn.Network {
	t.Helper()
	netOnce.Do(func() { netInst, netErr = nn.TinyCNN(3, 16, 5, mathx.NewRNG(7)) })
	if netErr != nil {
		t.Fatalf("detect fixture: %v", netErr)
	}
	return netInst
}

func canonicalImages(n int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := gtsrb.Canonical(i%gtsrb.NumClasses, 16)
		if i >= gtsrb.NumClasses {
			img = img.Clone()
			img.ScaleInPlace(0.85)
		}
		imgs[i] = img
	}
	return imgs
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"detect",
		"detect()",
		"detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)",
		"detect(squeezers=(median(r=2)),metric=top1,thr=0.25)",
		"detect(squeezers=(chain(median(r=1),lap(np=8)),bitdepth(bits=5)),thr=1.2)",
		"detect(thr=0.4)",
	}
	for _, spec := range specs {
		d, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := d.Name()
		d2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Name()=%q): %v", canon, err)
		}
		if got := d2.Name(); got != canon {
			t.Errorf("spec %q: round trip %q -> %q", spec, canon, got)
		}
		if len(d2.Squeezers) != len(d.Squeezers) || d2.Metric != d.Metric || d2.Threshold != d.Threshold {
			t.Errorf("spec %q: round trip changed configuration", spec)
		}
	}
	if d := Default(); d.Name() != "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=1)" {
		t.Errorf("Default().Name() = %q", d.Name())
	}
	for _, off := range []string{"", "  ", "none", "NONE"} {
		d, err := Parse(off)
		if err != nil || d != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", off, d, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"detect(squeezers=median(r=1))",    // list not parenthesized
		"detect(squeezers=())",             // empty list
		"detect(squeezers=(nosuch(r=1)))",  // unknown squeezer
		"detect(squeezers=(none))",         // no-op squeezer
		"detect(thr=abc)",                  // non-numeric threshold
		"detect(metric=l7)",                // unknown metric
		"detect(bogus=1)",                  // unknown key
		"detect(thr)",                      // not key=value
		"detect(squeezers=(median(r=1))",   // unbalanced parens
		"squeeze(squeezers=(median(r=1)))", // wrong name
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", spec)
		} else if !strings.Contains(err.Error(), "detect") && !strings.Contains(err.Error(), "filters") {
			t.Errorf("Parse(%q): error %q lacks package context", spec, err)
		}
	}
}

// TestScoreBatchMatchesSerial pins the batching contract: one grouped
// forward over the whole variant batch yields bit-identical scores to
// per-image Score calls.
func TestScoreBatchMatchesSerial(t *testing.T) {
	net := testNet(t)
	imgs := canonicalImages(6)
	for _, d := range []*Detector{
		Default(),
		{Squeezers: Default().Squeezers, Metric: MetricTop1, Threshold: 0.4},
	} {
		batch := d.ScoreBatch(net, imgs)
		for i, img := range imgs {
			single := d.Score(net, img)
			if batch[i].Score != single.Score || batch[i].MaxL1 != single.MaxL1 ||
				batch[i].Top1Disagree != single.Top1Disagree || batch[i].Flagged != single.Flagged {
				t.Fatalf("%s image %d: batch %+v != serial %+v", d.Name(), i, batch[i], single)
			}
			for q := range single.PerSqueezer {
				if batch[i].PerSqueezer[q] != single.PerSqueezer[q] {
					t.Fatalf("%s image %d squeezer %d: %+v != %+v",
						d.Name(), i, q, batch[i].PerSqueezer[q], single.PerSqueezer[q])
				}
			}
		}
	}
}

// TestCalibrateFPR checks the satellite contract: the calibrated
// threshold hits the requested clean false-positive rate to within one
// image on the GTSRB canonical fixtures.
func TestCalibrateFPR(t *testing.T) {
	net := testNet(t)
	imgs := canonicalImages(gtsrb.NumClasses)
	for _, fpr := range []float64{0, 0.05, 0.1, 0.2} {
		d := Default()
		thr, err := d.Calibrate(net, imgs, fpr)
		if err != nil {
			t.Fatalf("Calibrate(fpr=%v): %v", fpr, err)
		}
		if thr != d.Threshold {
			t.Fatalf("Calibrate returned %v but set Threshold=%v", thr, d.Threshold)
		}
		flagged := 0
		for _, s := range d.ScoreBatch(net, imgs) {
			if s.Flagged {
				flagged++
			}
		}
		want := int(math.Floor(fpr * float64(len(imgs))))
		if diff := flagged - want; diff < -1 || diff > 1 {
			t.Errorf("fpr=%v: flagged %d clean images, want %d ±1 (threshold %v)", fpr, flagged, want, thr)
		}
	}
	d := Default()
	if _, err := d.Calibrate(net, nil, 0.1); err == nil {
		t.Error("Calibrate with no images: expected error")
	}
	if _, err := d.Calibrate(net, imgs, 1.0); err == nil {
		t.Error("Calibrate with fpr=1: expected error")
	}
}

// TestROCMonotonePerAttack crafts adversarial examples per attack spec
// and checks the ROC over clean-vs-adversarial scores is a proper
// operating curve: starts at (0,0), ends at (1,1), and both rates are
// non-decreasing as the threshold sweeps down.
func TestROCMonotonePerAttack(t *testing.T) {
	net := testNet(t)
	clf := attacks.NetClassifier{Net: net}
	d := Default()
	clean := canonicalImages(10)
	cleanScores := make([]float64, len(clean))
	for i, s := range d.ScoreBatch(net, clean) {
		cleanScores[i] = s.Score
	}
	for _, spec := range []string{"fgsm(eps=0.2)", "bim(eps=0.15,steps=5)"} {
		atk, err := attacks.Parse(spec)
		if err != nil {
			t.Fatalf("attacks.Parse(%q): %v", spec, err)
		}
		var advScores []float64
		for i, img := range clean {
			src, _ := net.Predict(img)
			res, err := atk.Generate(context.Background(), clf, img, attacks.Goal{Source: src, Target: attacks.Untargeted})
			if err != nil {
				t.Fatalf("%s image %d: %v", spec, i, err)
			}
			advScores = append(advScores, d.Score(net, res.Adversarial).Score)
		}
		roc := ROC(cleanScores, advScores)
		if len(roc) < 2 {
			t.Fatalf("%s: ROC has %d points", spec, len(roc))
		}
		if first := roc[0]; first.FPR != 0 || first.TPR != 0 {
			t.Errorf("%s: ROC starts at (%v,%v), want (0,0)", spec, first.FPR, first.TPR)
		}
		if last := roc[len(roc)-1]; last.FPR != 1 || last.TPR != 1 {
			t.Errorf("%s: ROC ends at (%v,%v), want (1,1)", spec, last.FPR, last.TPR)
		}
		for i := 1; i < len(roc); i++ {
			if roc[i].FPR < roc[i-1].FPR || roc[i].TPR < roc[i-1].TPR {
				t.Errorf("%s: ROC not monotone at point %d: %+v -> %+v", spec, i, roc[i-1], roc[i])
			}
			if roc[i].Threshold >= roc[i-1].Threshold {
				t.Errorf("%s: thresholds not strictly decreasing at point %d", spec, i)
			}
		}
		if auc := AUC(cleanScores, advScores); math.IsNaN(auc) || auc < 0 || auc > 1 {
			t.Errorf("%s: AUC %v out of [0,1]", spec, auc)
		}
	}
}

func TestAUCRankStatistic(t *testing.T) {
	if got := AUC([]float64{0, 0.1}, []float64{0.9, 1}); got != 1 {
		t.Errorf("separable AUC = %v, want 1", got)
	}
	if got := AUC([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
	if got := AUC([]float64{0.5}, []float64{0.5}); got != 0.5 {
		t.Errorf("tied AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, []float64{1}); !math.IsNaN(got) {
		t.Errorf("empty clean AUC = %v, want NaN", got)
	}
}
