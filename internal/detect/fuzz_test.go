package detect

import "testing"

// FuzzParse throws arbitrary spec strings at the detector parser: it
// must never panic, and every accepted non-nil detector must round-trip
// through its canonical name. Run longer with:
//
//	go test ./internal/detect -fuzz FuzzParse -fuzztime 30s
func FuzzParse(f *testing.F) {
	f.Add("detect")
	f.Add("detect()")
	f.Add(Default().Name())
	f.Add("detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)")
	f.Add("detect(squeezers=(randnoise(sigma=0.05,seed=1)),metric=top1,thr=0.5)")
	f.Add("detect(squeezers=())")
	f.Add("detect(metric=l2)")
	f.Add("detect(thr=abc)")
	f.Add("notdetect(thr=1)")
	f.Add("none")
	f.Add("")

	f.Fuzz(func(t *testing.T, spec string) {
		d, err := Parse(spec)
		if err != nil || d == nil {
			return // rejections and disabled detection ("", none) are fine
		}
		name := d.Name()
		again, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but canonical name %q does not re-parse: %v", spec, name, err)
		}
		if again == nil {
			t.Fatalf("Parse(%q): canonical name %q re-parsed to nil", spec, name)
		}
		if again.Name() != name {
			t.Fatalf("Parse(%q): name round-trip unstable: %q -> %q", spec, name, again.Name())
		}
	})
}
