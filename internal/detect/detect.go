// Package detect implements adversarial-input detection by prediction
// discrepancy, the feature-squeezing idea (Xu et al., NDSS 2018) built
// from this repo's own ingredients: the same pre-processing filters the
// FAdeML paper studies as defenses double as "squeezers". A Detector
// compares the network's probability vector on the raw input against
// its output on each squeezed variant and scores the input as the
// worst-case L1 discrepancy — legitimate images survive squeezing with
// nearly unchanged predictions, adversarial perturbations do not.
//
// Detectors are declarative in the attacks/filters style:
// Parse("detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)")
// builds a configured instance and Name() renders the canonical
// round-trippable spec. Thresholds are calibrated on clean data to a
// target clean false-positive rate with Calibrate, and ROC/AUC turn
// clean-vs-adversarial score sets into threshold-free quality numbers.
//
// Scoring is batched end to end: ScoreBatch squeezes the whole batch
// with one ApplyBatch per squeezer and runs a single grouped ProbsBatch
// over raw+squeezed variants, so one detect call costs one grouped
// forward pass.
package detect

import (
	"math"

	"repro/internal/filters"
	"repro/internal/tensor"
)

// Prober is the slice of a network the detector needs: a batched
// forward pass to probability vectors. Both *nn.Network and *nn.Net32
// satisfy it.
type Prober interface {
	ProbsBatch(imgs []*tensor.Tensor) [][]float64
}

// Metric selects how per-squeezer discrepancies aggregate into the
// detector score.
type Metric int

const (
	// MetricL1 scores max_i ‖Probs(x) − Probs(squeeze_i(x))‖₁ — the
	// feature-squeezing joint detector. Range [0, 2].
	MetricL1 Metric = iota
	// MetricTop1 scores the fraction of squeezers whose top-1 class
	// disagrees with the raw prediction. Range [0, 1]; coarser than L1
	// but robust to confidence scaling.
	MetricTop1
)

// String returns the spec token of the metric ("l1" or "top1").
func (m Metric) String() string {
	if m == MetricTop1 {
		return "top1"
	}
	return "l1"
}

// Detector flags inputs whose predictions are unstable under a set of
// squeezing filters. The zero value is unusable; build one with
// Default, Parse, or by filling the fields directly.
type Detector struct {
	// Squeezers are the filters whose filtered views are compared
	// against the raw prediction. Order is part of the canonical spec.
	Squeezers []filters.Filter
	// Metric aggregates per-squeezer discrepancies (default MetricL1).
	Metric Metric
	// Threshold is the flag cutoff: an input is flagged when its score
	// is strictly greater than Threshold. Calibrate sets it from clean
	// data; DefaultThreshold is a conservative uncalibrated fallback.
	Threshold float64
}

// DefaultThreshold is the uncalibrated flag cutoff: half the maximum L1
// distance between probability vectors. Calibrate replaces it with a
// data-driven value.
const DefaultThreshold = 1.0

// Default returns the stock ensemble — bit-depth squeezing to 4 bits
// plus a radius-1 median filter, the NDSS'18 joint-detector pairing —
// at the uncalibrated DefaultThreshold.
func Default() *Detector {
	return &Detector{
		Squeezers: []filters.Filter{filters.NewBitDepth(4), filters.NewMedian(1)},
		Metric:    MetricL1,
		Threshold: DefaultThreshold,
	}
}

// SqueezerScore is one squeezer's contribution to a verdict.
type SqueezerScore struct {
	// Squeezer is the canonical filter spec.
	Squeezer string `json:"squeezer"`
	// L1 is ‖Probs(x) − Probs(squeeze(x))‖₁ ∈ [0, 2].
	L1 float64 `json:"l1"`
	// Class is the top-1 class of the squeezed view.
	Class int `json:"class"`
	// Agrees reports whether the squeezed top-1 matches the raw top-1.
	Agrees bool `json:"agrees"`
}

// Score is a detector verdict for one input.
type Score struct {
	// Score is the aggregated discrepancy under the detector's Metric.
	Score float64 `json:"score"`
	// MaxL1 is the worst per-squeezer L1 discrepancy regardless of the
	// configured metric.
	MaxL1 float64 `json:"max_l1"`
	// Top1Disagree counts squeezers whose top-1 class differs from the
	// raw prediction.
	Top1Disagree int `json:"top1_disagree"`
	// Flagged reports Score > Threshold at scoring time.
	Flagged bool `json:"flagged"`
	// PerSqueezer is the per-squeezer breakdown, in Squeezers order.
	PerSqueezer []SqueezerScore `json:"per_squeezer,omitempty"`
}

// ScoreFromProbs computes the verdict from already-available
// probability vectors: raw is Probs(x), squeezed[i] is
// Probs(Squeezers[i](x)). This is the single scoring kernel every
// entry point (direct, batched, and the serving layer, which reuses
// rows it has already computed) funnels through.
func (d *Detector) ScoreFromProbs(raw []float64, squeezed [][]float64) Score {
	rawTop := argMax(raw)
	s := Score{PerSqueezer: make([]SqueezerScore, len(squeezed))}
	for i, sq := range squeezed {
		l1 := l1Dist(raw, sq)
		top := argMax(sq)
		agrees := top == rawTop
		if !agrees {
			s.Top1Disagree++
		}
		if l1 > s.MaxL1 {
			s.MaxL1 = l1
		}
		name := ""
		if i < len(d.Squeezers) {
			name = d.Squeezers[i].Name()
		}
		s.PerSqueezer[i] = SqueezerScore{Squeezer: name, L1: l1, Class: top, Agrees: agrees}
	}
	switch d.Metric {
	case MetricTop1:
		if n := len(squeezed); n > 0 {
			s.Score = float64(s.Top1Disagree) / float64(n)
		}
	default:
		s.Score = s.MaxL1
	}
	s.Flagged = s.Score > d.Threshold
	return s
}

// Score runs the detector on one input: one forward batch of
// 1+len(Squeezers) images through p.
func (d *Detector) Score(p Prober, x *tensor.Tensor) Score {
	return d.ScoreBatch(p, []*tensor.Tensor{x})[0]
}

// ScoreBatch scores every input. The whole call costs one ApplyBatch
// per squeezer plus a single grouped forward pass over the
// n×(1+len(Squeezers)) variant batch, and out[i] is bit-identical to
// Score(p, xs[i]) because probability vectors are a per-image function
// of the batched forward.
func (d *Detector) ScoreBatch(p Prober, xs []*tensor.Tensor) []Score {
	n := len(xs)
	if n == 0 {
		return nil
	}
	k := len(d.Squeezers)
	group := make([]*tensor.Tensor, 0, n*(k+1))
	group = append(group, xs...)
	for _, sq := range d.Squeezers {
		group = append(group, sq.ApplyBatch(xs)...)
	}
	rows := p.ProbsBatch(group)
	out := make([]Score, n)
	squeezed := make([][]float64, k)
	for i := 0; i < n; i++ {
		for q := 0; q < k; q++ {
			squeezed[q] = rows[(q+1)*n+i]
		}
		out[i] = d.ScoreFromProbs(rows[i], squeezed)
	}
	return out
}

func l1Dist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

func argMax(p []float64) int {
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best
}
