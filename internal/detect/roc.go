package detect

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Calibrate sets the detector threshold from clean data so that the
// clean false-positive rate matches fpr as closely as the sample
// allows: with n images and k = floor(fpr·n), the threshold is the
// (n−k)-th smallest clean score, leaving exactly k clean images
// strictly above it (scores tie-break conservatively — ties with the
// threshold are not flagged). The chosen threshold is stored in
// d.Threshold and returned.
func (d *Detector) Calibrate(p Prober, images []*tensor.Tensor, fpr float64) (float64, error) {
	if len(images) == 0 {
		return 0, fmt.Errorf("detect: calibrate needs at least one clean image")
	}
	if math.IsNaN(fpr) || fpr < 0 || fpr >= 1 {
		return 0, fmt.Errorf("detect: calibrate fpr %v out of range [0, 1)", fpr)
	}
	scores := d.ScoreBatch(p, images)
	vals := make([]float64, len(scores))
	for i, s := range scores {
		vals[i] = s.Score
	}
	d.Threshold = QuantileThreshold(vals, fpr)
	return d.Threshold, nil
}

// QuantileThreshold returns the flag cutoff that leaves
// floor(fpr·len(scores)) clean scores strictly above it (modulo ties) —
// the calibration quantile Calibrate applies, exported for callers that
// gather clean scores through their own serving path.
func QuantileThreshold(scores []float64, fpr float64) float64 {
	vals := append([]float64(nil), scores...)
	sort.Float64s(vals)
	n := len(vals)
	k := int(math.Floor(fpr * float64(n)))
	return vals[n-1-k]
}

// ROCPoint is one operating point of the detector.
type ROCPoint struct {
	// Threshold is the cutoff producing this point (flag iff score >
	// Threshold).
	Threshold float64 `json:"threshold"`
	// FPR is the fraction of clean scores above Threshold.
	FPR float64 `json:"fpr"`
	// TPR is the fraction of adversarial scores above Threshold.
	TPR float64 `json:"tpr"`
}

// ROC sweeps the threshold over every distinct observed score and
// returns the operating curve from (0,0) — threshold above every score
// — to (1,1), with both rates non-decreasing along the curve.
func ROC(clean, adv []float64) []ROCPoint {
	all := make([]float64, 0, len(clean)+len(adv))
	all = append(all, clean...)
	all = append(all, adv...)
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	points := []ROCPoint{{Threshold: math.Inf(1)}}
	for i, thr := range all {
		if i > 0 && thr == all[i-1] {
			continue
		}
		points = append(points, ROCPoint{
			Threshold: thr,
			FPR:       fracAbove(clean, thr),
			TPR:       fracAbove(adv, thr),
		})
	}
	// The flag rule is strict (score > threshold), so even the minimum
	// observed score leaves its own ties unflagged; a −∞ endpoint closes
	// the curve at (1,1).
	points = append(points, ROCPoint{
		Threshold: math.Inf(-1),
		FPR:       fracAbove(clean, math.Inf(-1)),
		TPR:       fracAbove(adv, math.Inf(-1)),
	})
	return points
}

// AUC is the area under the ROC curve, computed as the rank statistic
// P(adv score > clean score) + ½·P(tie) over all pairs. 0.5 is chance,
// 1.0 is a perfect detector. Returns NaN when either set is empty.
func AUC(clean, adv []float64) float64 {
	if len(clean) == 0 || len(adv) == 0 {
		return math.NaN()
	}
	wins := 0.0
	for _, a := range adv {
		for _, c := range clean {
			switch {
			case a > c:
				wins++
			case a == c:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(clean)*len(adv))
}

func fracAbove(xs []float64, thr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
