package detect

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/filters"
)

// Name returns the canonical round-trippable spec of the detector, e.g.
// "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)". The
// metric key is omitted for the default l1 metric; Parse(Name())
// reconstructs an identically configured detector.
func (d *Detector) Name() string {
	var b strings.Builder
	b.WriteString("detect(squeezers=(")
	for i, sq := range d.Squeezers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sq.Name())
	}
	b.WriteString(")")
	if d.Metric != MetricL1 {
		b.WriteString(",metric=")
		b.WriteString(d.Metric.String())
	}
	b.WriteString(",thr=")
	b.WriteString(strconv.FormatFloat(d.Threshold, 'g', -1, 64))
	b.WriteString(")")
	return b.String()
}

// ParseMetric parses a metric token ("l1" or "top1").
func ParseMetric(s string) (Metric, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "l1":
		return MetricL1, nil
	case "top1":
		return MetricTop1, nil
	default:
		return 0, fmt.Errorf("detect: unknown metric %q (want l1 or top1)", s)
	}
}

// Parse builds a Detector from its spec, mirroring the filters/attacks
// grammar: "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)".
// Accepted keys are squeezers (a parenthesized list of filter specs,
// each parsed by filters.Parse), metric (l1 or top1) and thr (a finite
// float). Bare "detect" or "detect()" yields Default(); empty and
// "none" yield (nil, nil) — detection disabled. Errors follow the
// filters.Parse convention so flag and request boundaries can surface
// them as usage errors rather than panics.
func Parse(spec string) (*Detector, error) {
	s := strings.TrimSpace(spec)
	if s == "" || strings.EqualFold(s, "none") {
		return nil, nil
	}
	name, args, err := splitSpec(s)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(name, "detect") {
		return nil, fmt.Errorf("detect: spec %q: unknown detector %q (want detect(...))", spec, name)
	}
	d := Default()
	if args == "" {
		return d, nil
	}
	for _, item := range splitTopLevel(args) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("detect: spec %q: argument %q is not key=value", spec, item)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "squeezers":
			sqs, err := parseSqueezers(spec, val)
			if err != nil {
				return nil, err
			}
			d.Squeezers = sqs
		case "metric":
			m, err := ParseMetric(val)
			if err != nil {
				return nil, fmt.Errorf("detect: spec %q: %v", spec, err)
			}
			d.Metric = m
		case "thr":
			thr, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("detect: spec %q: thr %q is not a number", spec, val)
			}
			d.Threshold = thr
		default:
			return nil, fmt.Errorf("detect: spec %q: unknown key %q (want squeezers, metric or thr)", spec, key)
		}
	}
	if len(d.Squeezers) == 0 {
		return nil, fmt.Errorf("detect: spec %q: squeezers list is empty", spec)
	}
	return d, nil
}

// parseSqueezers parses the parenthesized squeezer list
// "(bitdepth(bits=4),median(r=1))" into configured filters.
func parseSqueezers(spec, val string) ([]filters.Filter, error) {
	if len(val) < 2 || val[0] != '(' || val[len(val)-1] != ')' {
		return nil, fmt.Errorf("detect: spec %q: squeezers wants a parenthesized filter list, got %q", spec, val)
	}
	inner := val[1 : len(val)-1]
	var sqs []filters.Filter
	for _, fs := range splitTopLevel(inner) {
		fs = strings.TrimSpace(fs)
		if fs == "" {
			continue
		}
		f, err := filters.Parse(fs)
		if err != nil {
			return nil, fmt.Errorf("detect: spec %q: squeezer %q: %v", spec, fs, err)
		}
		if f == nil {
			return nil, fmt.Errorf("detect: spec %q: squeezer %q is a no-op", spec, fs)
		}
		sqs = append(sqs, f)
	}
	return sqs, nil
}

// splitSpec splits "name(args)" into name and args; a bare name has
// empty args.
func splitSpec(s string) (name, args string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("detect: spec %q: missing closing parenthesis", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}

// splitTopLevel splits on commas at parenthesis depth zero, so nested
// filter specs like chain(median(r=1),lap(np=8)) stay intact.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
