package tensor

import (
	"math"

	"repro/internal/mathx"
)

// RandN returns a tensor with i.i.d. standard normal entries drawn from rng.
func RandN(rng *mathx.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Norm()
	}
	return t
}

// RandU returns a tensor with i.i.d. uniform entries in [lo, hi).
func RandU(rng *mathx.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Range(lo, hi)
	}
	return t
}

// FillRandN overwrites t with i.i.d. normal entries of the given mean and
// stddev.
func (t *Tensor) FillRandN(rng *mathx.RNG, mean, stddev float64) {
	for i := range t.data {
		t.data[i] = rng.NormScaled(mean, stddev)
	}
}

// FillHeNormal initializes t with the He/Kaiming normal scheme for a layer
// with the given fan-in — the standard initialization for ReLU networks and
// the one used for every convolution and dense layer in this repository.
func (t *Tensor) FillHeNormal(rng *mathx.RNG, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.FillRandN(rng, 0, std)
}

// FillXavierUniform initializes t with the Glorot/Xavier uniform scheme for
// the given fan-in and fan-out, used for the final classifier layer.
func (t *Tensor) FillXavierUniform(rng *mathx.RNG, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.data {
		t.data[i] = rng.Range(-limit, limit)
	}
}
