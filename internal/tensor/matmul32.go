package tensor

import (
	"fmt"
	"sync"

	"repro/internal/parallel"
)

// Float32 GEMM: the packed, register-blocked core of the inference fast
// lane. It mirrors the float64 core in matmul.go — same jc→pc→ic cache
// blocking, same MR-tall/NR-wide panel packing — but with a widened 4×8
// register tile: eight float32 output columns fit two 128-bit vector
// registers, so the amd64 microkernel (matmul32_amd64.s) computes the
// whole tile with packed MULPS/ADDPS at four lanes per instruction. On
// other architectures the pure-Go microKernel32Go runs the identical
// per-element operation sequence.
//
// Determinism contract (same as the float64 core): for every output
// element, contributions are added in increasing k order, one IEEE-754
// float32 multiply and one float32 add per k index. Vector lanes hold
// *independent* output columns — there is no horizontal reduction and no
// FMA, so the SSE kernel, the pure-Go kernel, the unpacked small-shape
// fallback and the multi-core row split all produce bit-identical
// results for all finite inputs.
const (
	// gemm32MR×gemm32NR is the register tile: 4 rows × 8 columns = eight
	// 4-lane XMM accumulators, leaving registers for the two B vectors
	// and the broadcast A scalar on amd64.
	gemm32MR = 4
	gemm32NR = 8
	// Cache blocks: float32 halves the byte footprint of the float64
	// core's blocks, so the same element counts sit even more comfortably
	// in L1/L2.
	gemm32KC = 256
	gemm32MC = 128
	gemm32NC = 1024
	// Below this m·n·k the packing overhead outweighs the blocked core.
	gemm32SmallLimit = 8192
	// At or above this m·n·k the row-panel multi-core split engages
	// (when the process-wide pool has more than one worker and no outer
	// fan-out is already running).
	gemm32ParallelLimit = 1 << 20
)

// gemmBufs32 is the packing scratch for one in-flight gemm32 call,
// pooled like the float64 gemmBufs.
type gemmBufs32 struct {
	a, b []float32
}

var gemm32Pool = sync.Pool{New: func() any { return new(gemmBufs32) }}

func growBuf32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// gemm32 computes dst (+)= opA·opB for a row-major m×n dst, where
// opA[i][p] = a[i·ars + p·acs] and opB[p][j] = b[p·brs + j·bcs].
// accum selects += (true) versus overwrite (false). dst must not alias
// a or b.
func gemm32(dst []float32, m, n, k int, a []float32, ars, acs int, b []float32, brs, bcs int, accum bool) {
	if !accum {
		clear(dst[:m*n])
	}
	if m >= 2 && n >= 2 && k >= 4 && m*n*k >= gemm32SmallLimit {
		if w := gemm32Workers(m, n, k); w > 1 {
			gemm32Rows(dst, m, n, k, a, ars, acs, b, brs, bcs, w)
			return
		}
		gemmPacked32(dst, m, n, k, a, ars, acs, b, brs, bcs)
		return
	}
	gemmSmall32(dst, m, n, k, a, ars, acs, b, brs, bcs)
}

// gemm32Workers picks the row-split width for one call: 1 (serial) unless
// the shape is large enough to amortize the fork, the process-wide pool
// has spare workers, and no outer fan-out is already running (an
// experiment-engine worker calling conv forward must not oversubscribe
// the CPU with workers² goroutines).
func gemm32Workers(m, n, k int) int {
	if m < 2*gemm32MR || m*n*k < gemm32ParallelLimit {
		return 1
	}
	if parallel.Active() > 0 {
		return 1
	}
	w := parallel.Workers()
	if max := m / gemm32MR; w > max {
		w = max
	}
	return w
}

// gemm32Rows splits dst's rows into `workers` contiguous panels aligned
// to gemm32MR and runs gemmPacked32 on each panel concurrently. Every
// output element is computed entirely by one worker with the exact
// k-order of the serial kernel, so the result is bit-identical to a
// single gemmPacked32 over the whole matrix regardless of worker count.
func gemm32Rows(dst []float32, m, n, k int, a []float32, ars, acs int, b []float32, brs, bcs int, workers int) {
	panels := (m + gemm32MR - 1) / gemm32MR
	if workers > panels {
		workers = panels
	}
	per := (panels + workers - 1) / workers
	chunks := (panels + per - 1) / per
	parallel.ForWorker(chunks, chunks, func(_, ci int) {
		i0 := ci * per * gemm32MR
		i1 := min(m, i0+per*gemm32MR)
		if i0 >= i1 {
			return
		}
		gemmPacked32(dst[i0*n:], i1-i0, n, k, a[i0*ars:], ars, acs, b, brs, bcs)
	})
}

// gemmSmall32 is the unpacked fallback for shapes too small to amortize
// packing: plain per-element accumulation in increasing k order, one
// rounded multiply and one rounded add per k — the reference operation
// sequence the packed core reproduces bit for bit.
func gemmSmall32(dst []float32, m, n, k int, a []float32, ars, acs int, b []float32, brs, bcs int) {
	for i := 0; i < m; i++ {
		ai := i * ars
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := j * bcs
			s := drow[j]
			for p := 0; p < k; p++ {
				s += a[ai+p*acs] * b[bj+p*brs]
			}
			drow[j] = s
		}
	}
}

// gemmPacked32 is the blocked core: loop nest jc→pc→ic over nc/kc/mc
// cache blocks, packing B into gemm32NR-wide column panels and A into
// gemm32MR-tall row panels, then driving the register microkernel.
func gemmPacked32(dst []float32, m, n, k int, a []float32, ars, acs int, b []float32, brs, bcs int) {
	bufs := gemm32Pool.Get().(*gemmBufs32)
	kcMax := min(k, gemm32KC)
	mcMax := min(m, gemm32MC)
	ncMax := min(n, gemm32NC)
	bufs.a = growBuf32(bufs.a, roundUp(mcMax, gemm32MR)*kcMax)
	bufs.b = growBuf32(bufs.b, kcMax*roundUp(ncMax, gemm32NR))
	for jc := 0; jc < n; jc += gemm32NC {
		nc := min(gemm32NC, n-jc)
		for pc := 0; pc < k; pc += gemm32KC {
			kc := min(gemm32KC, k-pc)
			packB32(bufs.b, b, brs, bcs, pc, pc+kc, jc, jc+nc)
			for ic := 0; ic < m; ic += gemm32MC {
				mc := min(gemm32MC, m-ic)
				packA32(bufs.a, a, ars, acs, ic, ic+mc, pc, pc+kc)
				gemmMacro32(dst, n, ic, jc, mc, nc, kc, bufs.a, bufs.b)
			}
		}
	}
	gemm32Pool.Put(bufs)
}

// packA32 lays out rows [i0,i1) × columns [p0,p1) of opA as gemm32MR-tall
// panels, zero-padding short final panels (the pad lanes feed
// accumulators that are never stored).
func packA32(dst, a []float32, rs, cs, i0, i1, p0, p1 int) {
	idx := 0
	for i := i0; i < i1; i += gemm32MR {
		rows := min(gemm32MR, i1-i)
		if rows == gemm32MR && cs == 1 {
			r0 := a[i*rs+p0 : i*rs+p1]
			r1 := a[(i+1)*rs+p0 : (i+1)*rs+p1]
			r2 := a[(i+2)*rs+p0 : (i+2)*rs+p1]
			r3 := a[(i+3)*rs+p0 : (i+3)*rs+p1]
			for p := range r0 {
				dst[idx] = r0[p]
				dst[idx+1] = r1[p]
				dst[idx+2] = r2[p]
				dst[idx+3] = r3[p]
				idx += gemm32MR
			}
			continue
		}
		for p := p0; p < p1; p++ {
			pc := p * cs
			for r := 0; r < rows; r++ {
				dst[idx+r] = a[(i+r)*rs+pc]
			}
			for r := rows; r < gemm32MR; r++ {
				dst[idx+r] = 0
			}
			idx += gemm32MR
		}
	}
}

// packB32 lays out rows [p0,p1) × columns [j0,j1) of opB as gemm32NR-wide
// panels, zero-padding short final panels.
func packB32(dst, b []float32, rs, cs, p0, p1, j0, j1 int) {
	idx := 0
	for j := j0; j < j1; j += gemm32NR {
		cols := min(gemm32NR, j1-j)
		if cols == gemm32NR && cs == 1 {
			for p := p0; p < p1; p++ {
				copy(dst[idx:idx+gemm32NR], b[p*rs+j:p*rs+j+gemm32NR])
				idx += gemm32NR
			}
			continue
		}
		for p := p0; p < p1; p++ {
			pr := p * rs
			for c := 0; c < cols; c++ {
				dst[idx+c] = b[pr+(j+c)*cs]
			}
			for c := cols; c < gemm32NR; c++ {
				dst[idx+c] = 0
			}
			idx += gemm32NR
		}
	}
}

// gemmMacro32 sweeps the microkernel over one packed mc×kc × kc×nc block.
// Edge tiles run through a local buffer so the microkernel only ever sees
// full gemm32MR×gemm32NR tiles.
func gemmMacro32(dst []float32, ldd, i0, j0, mc, nc, kc int, apack, bpack []float32) {
	for jr := 0; jr < nc; jr += gemm32NR {
		nrV := min(gemm32NR, nc-jr)
		bp := bpack[(jr/gemm32NR)*kc*gemm32NR:]
		for ir := 0; ir < mc; ir += gemm32MR {
			mrV := min(gemm32MR, mc-ir)
			ap := apack[(ir/gemm32MR)*kc*gemm32MR:]
			c := dst[(i0+ir)*ldd+j0+jr:]
			if mrV == gemm32MR && nrV == gemm32NR {
				microKernel32(c, ldd, ap, bp, kc)
				continue
			}
			var cbuf [gemm32MR * gemm32NR]float32
			for r := 0; r < mrV; r++ {
				copy(cbuf[r*gemm32NR:r*gemm32NR+nrV], c[r*ldd:r*ldd+nrV])
			}
			microKernel32(cbuf[:], gemm32NR, ap, bp, kc)
			for r := 0; r < mrV; r++ {
				copy(c[r*ldd:r*ldd+nrV], cbuf[r*gemm32NR:r*gemm32NR+nrV])
			}
		}
	}
}

// microKernel32Go is the portable microkernel: a 4×8 tile accumulated in
// increasing k order, one rounded float32 multiply and add per element
// per k. The amd64 assembly kernel performs these exact operations on
// packed lanes (independent output columns per lane, no FMA), so both
// produce identical bits; the asm-vs-Go equivalence test pins that.
func microKernel32Go(c []float32, ldc int, ap, bp []float32, kc int) {
	var acc [gemm32MR * gemm32NR]float32
	for r := 0; r < gemm32MR; r++ {
		copy(acc[r*gemm32NR:(r+1)*gemm32NR], c[r*ldc:r*ldc+gemm32NR])
	}
	ap = ap[:kc*gemm32MR]
	bp = bp[:kc*gemm32NR]
	for p := 0; p < kc; p++ {
		bv := bp[p*gemm32NR : p*gemm32NR+gemm32NR : p*gemm32NR+gemm32NR]
		av := ap[p*gemm32MR : p*gemm32MR+gemm32MR : p*gemm32MR+gemm32MR]
		for r := 0; r < gemm32MR; r++ {
			a := av[r]
			row := acc[r*gemm32NR : (r+1)*gemm32NR : (r+1)*gemm32NR]
			row[0] += a * bv[0]
			row[1] += a * bv[1]
			row[2] += a * bv[2]
			row[3] += a * bv[3]
			row[4] += a * bv[4]
			row[5] += a * bv[5]
			row[6] += a * bv[6]
			row[7] += a * bv[7]
		}
	}
	for r := 0; r < gemm32MR; r++ {
		copy(c[r*ldc:r*ldc+gemm32NR], acc[r*gemm32NR:(r+1)*gemm32NR])
	}
}

// matmul32Dims checks that both operands are 2-d and returns their stored
// shapes, mirroring matmulDims.
func matmul32Dims(op string, a, b *Tensor32) (m, k, k2, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-d operands, got %v and %v", op, a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[0], b.shape[1]
}

func checkDst32(op string, dst *Tensor32, m, n int) {
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

// MatMul32 returns the matrix product a(m×k) · b(k×n) as a new m×n tensor.
func MatMul32(a, b *Tensor32) *Tensor32 {
	m, k, k2, n := matmul32Dims("MatMul32", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New32(m, n)
	gemm32(out.data, m, n, k, a.data, k, 1, b.data, n, 1, true)
	return out
}

// MatMul32Into computes dst = a(m×k) · b(k×n) in place, overwriting dst.
// dst must be m×n and must not alias a or b — the allocation-free variant
// for the float32 conv/dense forward hot paths.
func MatMul32Into(dst, a, b *Tensor32) {
	m, k, k2, n := matmul32Dims("MatMul32Into", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32Into inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	checkDst32("MatMul32Into", dst, m, n)
	gemm32(dst.data, m, n, k, a.data, k, 1, b.data, n, 1, false)
}

// MatMul32Accum computes dst += a(m×k) · b(k×n) in place. dst must be m×n.
func MatMul32Accum(dst, a, b *Tensor32) {
	m, k, k2, n := matmul32Dims("MatMul32Accum", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32Accum inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	checkDst32("MatMul32Accum", dst, m, n)
	gemm32(dst.data, m, n, k, a.data, k, 1, b.data, n, 1, true)
}

// MatMul32TransB returns a · bᵀ where a is m×k and b is n×k; the result
// is m×n. The operand panels are packed once, so the transposed read
// never reaches the O(m·n·k) inner loop.
func MatMul32TransB(a, b *Tensor32) *Tensor32 {
	m, k, n, k2 := matmul32Dims("MatMul32TransB", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32TransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New32(m, n)
	gemm32(out.data, m, n, k, a.data, k, 1, b.data, 1, k, false)
	return out
}

// MatMul32TransBInto computes dst = a · bᵀ in place (a m×k, b n×k,
// dst m×n), the allocation-free variant of MatMul32TransB.
func MatMul32TransBInto(dst, a, b *Tensor32) {
	m, k, n, k2 := matmul32Dims("MatMul32TransBInto", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32TransBInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	checkDst32("MatMul32TransBInto", dst, m, n)
	gemm32(dst.data, m, n, k, a.data, k, 1, b.data, 1, k, false)
}
