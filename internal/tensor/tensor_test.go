package tensor

import (
	"strings"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 {
		t.Fatalf("Len = %d", a.Len())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
	if a.Dims() != 2 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("shape accessors wrong: %v", a.Shape())
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with non-positive dim did not panic")
		}
	}()
	New(2, 0)
}

func TestFromSlice(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 || a.At(0, 0) != 1 || a.At(0, 2) != 3 {
		t.Fatalf("FromSlice indexing wrong: %v", a)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At after Set = %v", got)
	}
	// Row-major layout: offset of (1,2,3) in 2x3x4 is 1*12+2*4+3 = 23.
	if a.Data()[23] != 7.5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%v) did not panic", idx)
				}
			}()
			a.At(idx...)
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := a.Clone()
	c.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !c.SameShape(a) {
		t.Fatal("Clone changed shape")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 4)
	a.CopyFrom(b)
	if a.At(1, 1) != 4 {
		t.Fatal("CopyFrom did not copy data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom length mismatch did not panic")
		}
	}()
	a.CopyFrom(New(3))
}

func TestFillAndZero(t *testing.T) {
	a := New(3)
	a.Fill(2.5)
	if a.Sum() != 7.5 {
		t.Fatalf("Fill sum = %v", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero did not clear")
	}
	b := Full(3, 2, 2)
	if b.Sum() != 12 {
		t.Fatalf("Full sum = %v", b.Sum())
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("different shapes reported same")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Fatal("different ranks reported same")
	}
}

func TestStringCompact(t *testing.T) {
	a := New(100)
	s := a.String()
	if !strings.Contains(s, "...") {
		t.Fatalf("large tensor String not truncated: %q", s)
	}
	if len(s) > 200 {
		t.Fatalf("String too long: %d chars", len(s))
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Len() != 1 || s.Dims() != 0 {
		t.Fatalf("scalar tensor Len=%d Dims=%d", s.Len(), s.Dims())
	}
	s.Set(5)
	if s.At() != 5 {
		t.Fatal("scalar At/Set failed")
	}
}
