package tensor

import (
	"math"

	"repro/internal/mathx"
)

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	return t.Sum() / float64(len(t.data))
}

// Max returns the largest element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element (first on ties).
func (t *Tensor) ArgMax() int {
	return mathx.ArgMax(t.data)
}

// L1Norm returns the sum of absolute values.
func (t *Tensor) L1Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += math.Abs(v)
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// LInfNorm returns the maximum absolute value — the perturbation budget
// metric for FGSM/BIM-style attacks.
func (t *Tensor) LInfNorm() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L0Count returns the number of elements with |v| > eps, the sparsity
// measure used by pixel-budget attacks such as JSMA.
func (t *Tensor) L0Count(eps float64) int {
	n := 0
	for _, v := range t.data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// AllFinite reports whether every element is finite (no NaN/Inf), used as a
// sanity check after optimization steps.
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if !mathx.IsFinite(v) {
			return false
		}
	}
	return true
}
