//go:build amd64

package tensor

// microKernel32SSE is the hand-vectorized 4×8 float32 tile update in
// matmul32_amd64.s: eight XMM accumulators, packed MULPS/ADDPS at four
// lanes per instruction. Lanes hold independent output columns and the
// kernel uses no FMA, so every element still receives exactly one
// rounded multiply and one rounded add per k step — bit-identical to
// microKernel32Go (pinned by TestMicroKernel32AsmMatchesGo).
//
//go:noescape
func microKernel32SSE(c *float32, ldc int, ap, bp *float32, kc int)

// useAsmKernel32 reports whether the assembly microkernel backs
// microKernel32 on this build (surfaced in benchmarks/docs).
const useAsmKernel32 = true

// microKernel32 computes c[0:4][0:8] += apᵀ·bp over kc packed steps,
// where ap is a gemm32MR-tall A panel and bp a gemm32NR-wide B panel.
func microKernel32(c []float32, ldc int, ap, bp []float32, kc int) {
	if kc <= 0 {
		return
	}
	_ = c[3*ldc+gemm32NR-1]
	_ = ap[kc*gemm32MR-1]
	_ = bp[kc*gemm32NR-1]
	microKernel32SSE(&c[0], ldc, &ap[0], &bp[0], kc)
}
