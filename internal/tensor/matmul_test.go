package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
	if c.Dim(0) != 2 || c.Dim(1) != 2 {
		t.Fatalf("MatMul shape = %v", c.Shape())
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := mathx.NewRNG(1)
	a := RandN(r, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !EqualWithin(MatMul(a, eye), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !EqualWithin(MatMul(eye, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulAccum(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := Full(1, 2, 2)
	MatMulAccum(dst, a, b)
	want := []float64{6, 7, 8, 9}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("MatMulAccum = %v", dst.Data())
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
}

// MatMulTransA(a,b) must equal MatMul(Transpose2D(a), b).
func TestMatMulTransAMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 5, 3)
		b := RandN(r, 5, 4)
		return EqualWithin(MatMulTransA(a, b), MatMul(Transpose2D(a), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// MatMulTransB(a,b) must equal MatMul(a, Transpose2D(b)).
func TestMatMulTransBMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 4, 6)
		b := RandN(r, 3, 6)
		return EqualWithin(MatMulTransB(a, b), MatMul(a, Transpose2D(b)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)C == A(BC) for random matrices (associativity within fp tolerance).
func TestMatMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 3, 4)
		b := RandN(r, 4, 5)
		c := RandN(r, 5, 2)
		return EqualWithin(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data()[0] != -2 || y.Data()[1] != -2 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := mathx.NewRNG(8)
	a := RandN(r, 6, 5)
	x := RandN(r, 5)
	viaMatMul := MatMul(a, x.Reshape(5, 1)).Flatten()
	if !EqualWithin(MatVec(a, x), viaMatMul, 1e-12) {
		t.Fatal("MatVec disagrees with MatMul")
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	r := mathx.NewRNG(21)
	a := RandN(r, 7, 5)
	b := RandN(r, 5, 9)
	dst := RandN(r, 7, 9) // non-zero garbage: Into must overwrite
	MatMulInto(dst, a, b)
	if !EqualWithin(dst, MatMul(a, b), 0) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}

func TestMatMulTransAIntoMatchesMatMulTransA(t *testing.T) {
	r := mathx.NewRNG(22)
	a := RandN(r, 6, 4)
	b := RandN(r, 6, 8)
	dst := RandN(r, 4, 8)
	MatMulTransAInto(dst, a, b)
	if !EqualWithin(dst, MatMulTransA(a, b), 0) {
		t.Fatal("MatMulTransAInto disagrees with MatMulTransA")
	}
}

func TestMatMulAccumTransBMatchesTransposedAccum(t *testing.T) {
	r := mathx.NewRNG(23)
	a := RandN(r, 5, 6)
	b := RandN(r, 7, 6)
	dst := RandN(r, 5, 7)
	want := dst.Clone()
	MatMulAccumTransB(dst, a, b)
	// Reference: materialized transpose plus dot-product accumulation.
	bt := Transpose2D(b)
	prod := MatMul(a, bt)
	want.AddInPlace(prod)
	if !EqualWithin(dst, want, 1e-12) {
		t.Fatal("MatMulAccumTransB disagrees with MatMulAccum over Transpose2D")
	}
}

func TestMatMulAccumTransAMatchesComposition(t *testing.T) {
	r := mathx.NewRNG(24)
	a := RandN(r, 6, 3)
	b := RandN(r, 6, 4)
	dst := RandN(r, 3, 4)
	want := dst.Clone()
	want.AddInPlace(MatMulTransA(a, b))
	MatMulAccumTransA(dst, a, b)
	if !EqualWithin(dst, want, 1e-12) {
		t.Fatal("MatMulAccumTransA disagrees with MatMulTransA + AddInPlace")
	}
}
