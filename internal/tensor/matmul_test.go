package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
	if c.Dim(0) != 2 || c.Dim(1) != 2 {
		t.Fatalf("MatMul shape = %v", c.Shape())
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := mathx.NewRNG(1)
	a := RandN(r, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !EqualWithin(MatMul(a, eye), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !EqualWithin(MatMul(eye, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulAccum(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := Full(1, 2, 2)
	MatMulAccum(dst, a, b)
	want := []float64{6, 7, 8, 9}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("MatMulAccum = %v", dst.Data())
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
}

// MatMulTransA(a,b) must equal MatMul(Transpose2D(a), b).
func TestMatMulTransAMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 5, 3)
		b := RandN(r, 5, 4)
		return EqualWithin(MatMulTransA(a, b), MatMul(Transpose2D(a), b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// MatMulTransB(a,b) must equal MatMul(a, Transpose2D(b)).
func TestMatMulTransBMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 4, 6)
		b := RandN(r, 3, 6)
		return EqualWithin(MatMulTransB(a, b), MatMul(a, Transpose2D(b)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)C == A(BC) for random matrices (associativity within fp tolerance).
func TestMatMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 3, 4)
		b := RandN(r, 4, 5)
		c := RandN(r, 5, 2)
		return EqualWithin(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// naiveMatMul is the historical reference kernel: per output element a
// running accumulation over k in increasing order, skipping a==0 terms.
// Every public variant must stay bit-identical to a composition of this
// with explicit transposes.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := out.data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
	return out
}

// awkwardDims covers every microkernel remainder case: below/at/above the
// 4×4 register tile in both dimensions, degenerate 1×n and m×1 shapes,
// non-multiples of the tile, and sizes crossing the kc/mc/nc cache-block
// boundaries so multi-block accumulation order is exercised.
var awkwardDims = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31}

// awkwardK adds k values around the small-kernel dispatch threshold and
// the kc=256 blocking boundary.
var awkwardK = []int{1, 2, 3, 4, 5, 9, 64, 255, 256, 257}

// TestGEMMBlockedMatchesNaiveExhaustive drives every (m, k, n) combination
// of the awkward shapes through all six kernel variants and demands
// bit-exact agreement with the naive reference.
func TestGEMMBlockedMatchesNaiveExhaustive(t *testing.T) {
	r := mathx.NewRNG(99)
	for _, m := range awkwardDims {
		for _, k := range awkwardK {
			for _, n := range awkwardDims {
				a := RandN(r, m, k)
				b := RandN(r, k, n)
				// Sprinkle exact zeros so the naive kernel's zero-skip
				// path is exercised against the packed core.
				a.data[0] = 0
				if k > 2 {
					b.data[k/2*n] = 0
				}
				want := naiveMatMul(a, b)

				if got := MatMul(a, b); !EqualWithin(got, want, 0) {
					t.Fatalf("MatMul(%dx%d, %dx%d) != naive", m, k, k, n)
				}
				dst := RandN(r, m, n)
				MatMulInto(dst, a, b)
				if !EqualWithin(dst, want, 0) {
					t.Fatalf("MatMulInto(%dx%d, %dx%d) != naive", m, k, k, n)
				}
				if got := MatMulTransA(Transpose2D(a), b); !EqualWithin(got, want, 0) {
					t.Fatalf("MatMulTransA(%dx%d, %dx%d) != naive", k, m, k, n)
				}
				if got := MatMulTransB(a, Transpose2D(b)); !EqualWithin(got, want, 0) {
					t.Fatalf("MatMulTransB(%dx%d, %dx%d) != naive", m, k, n, k)
				}
			}
		}
	}
}

// TestGEMMAccumMatchesNaiveExhaustive checks the accumulating variants:
// MatMulAccum and MatMulAccumTransA add per-k running contributions on
// top of dst; MatMulAccumTransB adds the complete product in one rounded
// addition per element (its historical contract).
func TestGEMMAccumMatchesNaiveExhaustive(t *testing.T) {
	r := mathx.NewRNG(100)
	for _, m := range awkwardDims {
		for _, k := range awkwardK {
			for _, n := range awkwardDims {
				a := RandN(r, m, k)
				b := RandN(r, k, n)
				seed := RandN(r, m, n)

				// Running accumulation reference: start from seed, add one
				// product per k index in increasing order.
				runWant := seed.Clone()
				for i := 0; i < m; i++ {
					for p := 0; p < k; p++ {
						av := a.data[i*k+p]
						if av == 0 {
							continue
						}
						for j := 0; j < n; j++ {
							runWant.data[i*n+j] += av * b.data[p*n+j]
						}
					}
				}
				dst := seed.Clone()
				MatMulAccum(dst, a, b)
				if !EqualWithin(dst, runWant, 0) {
					t.Fatalf("MatMulAccum(%d,%d,%d) != running naive", m, k, n)
				}
				dst = seed.Clone()
				MatMulAccumTransA(dst, Transpose2D(a), b)
				if !EqualWithin(dst, runWant, 0) {
					t.Fatalf("MatMulAccumTransA(%d,%d,%d) != running naive", m, k, n)
				}

				// Dot-then-add reference for the TransB form.
				dotWant := seed.Clone()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						s := 0.0
						for p := 0; p < k; p++ {
							s += a.data[i*k+p] * b.data[p*n+j]
						}
						dotWant.data[i*n+j] += s
					}
				}
				dst = seed.Clone()
				MatMulAccumTransB(dst, a, Transpose2D(b))
				if !EqualWithin(dst, dotWant, 0) {
					t.Fatalf("MatMulAccumTransB(%d,%d,%d) != dot naive", m, k, n)
				}
			}
		}
	}
}

// TestGEMMPackedAndSmallPathsAgree pins the dispatch-independence of the
// kernel: forcing the packed core and the small fallback over the same
// operands must give bit-identical output, so the size heuristic can be
// retuned freely without changing any result.
func TestGEMMPackedAndSmallPathsAgree(t *testing.T) {
	r := mathx.NewRNG(101)
	for _, d := range []struct{ m, k, n int }{
		{2, 4, 16}, {4, 256, 4}, {5, 257, 9}, {16, 64, 16}, {128, 128, 128},
	} {
		a := RandN(r, d.m, d.k)
		b := RandN(r, d.k, d.n)
		packed := New(d.m, d.n)
		small := New(d.m, d.n)
		gemmPacked(packed.data, d.m, d.n, d.k, a.data, d.k, 1, b.data, d.n, 1)
		gemmSmall(small.data, d.m, d.n, d.k, a.data, d.k, 1, b.data, d.n, 1)
		if !EqualWithin(packed, small, 0) {
			t.Fatalf("packed and small paths disagree for %dx%dx%d", d.m, d.k, d.n)
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data()[0] != -2 || y.Data()[1] != -2 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := mathx.NewRNG(8)
	a := RandN(r, 6, 5)
	x := RandN(r, 5)
	viaMatMul := MatMul(a, x.Reshape(5, 1)).Flatten()
	if !EqualWithin(MatVec(a, x), viaMatMul, 1e-12) {
		t.Fatal("MatVec disagrees with MatMul")
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	r := mathx.NewRNG(21)
	a := RandN(r, 7, 5)
	b := RandN(r, 5, 9)
	dst := RandN(r, 7, 9) // non-zero garbage: Into must overwrite
	MatMulInto(dst, a, b)
	if !EqualWithin(dst, MatMul(a, b), 0) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}

func TestMatMulTransAIntoMatchesMatMulTransA(t *testing.T) {
	r := mathx.NewRNG(22)
	a := RandN(r, 6, 4)
	b := RandN(r, 6, 8)
	dst := RandN(r, 4, 8)
	MatMulTransAInto(dst, a, b)
	if !EqualWithin(dst, MatMulTransA(a, b), 0) {
		t.Fatal("MatMulTransAInto disagrees with MatMulTransA")
	}
}

func TestMatMulAccumTransBMatchesTransposedAccum(t *testing.T) {
	r := mathx.NewRNG(23)
	a := RandN(r, 5, 6)
	b := RandN(r, 7, 6)
	dst := RandN(r, 5, 7)
	want := dst.Clone()
	MatMulAccumTransB(dst, a, b)
	// Reference: materialized transpose plus dot-product accumulation.
	bt := Transpose2D(b)
	prod := MatMul(a, bt)
	want.AddInPlace(prod)
	if !EqualWithin(dst, want, 1e-12) {
		t.Fatal("MatMulAccumTransB disagrees with MatMulAccum over Transpose2D")
	}
}

func TestMatMulAccumTransAMatchesComposition(t *testing.T) {
	r := mathx.NewRNG(24)
	a := RandN(r, 6, 3)
	b := RandN(r, 6, 4)
	dst := RandN(r, 3, 4)
	want := dst.Clone()
	want.AddInPlace(MatMulTransA(a, b))
	MatMulAccumTransA(dst, a, b)
	if !EqualWithin(dst, want, 1e-12) {
		t.Fatal("MatMulAccumTransA disagrees with MatMulTransA + AddInPlace")
	}
}

// BenchmarkGEMM128 measures the packed core on the 128³ shape reported in
// PERFORMANCE.md (same shape as the top-level BenchmarkMatMul).
func BenchmarkGEMM128(b *testing.B) {
	r := mathx.NewRNG(2)
	x := RandN(r, 128, 128)
	y := RandN(r, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkGEMMConvShape measures the dominant conv-layer shape of the
// tiny profile (OutC×patch × patch×spatial after im2col).
func BenchmarkGEMMConvShape(b *testing.B) {
	r := mathx.NewRNG(3)
	w := RandN(r, 24, 108)
	cols := RandN(r, 108, 256)
	dst := New(24, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, w, cols)
	}
}
