package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 || got[0] != 11 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[3] != 36 || got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2, 2), New(4))
}

func TestScaleAndInPlace(t *testing.T) {
	a := FromSlice([]float64{1, -2}, 2)
	s := Scale(a, 3)
	if s.Data()[1] != -6 {
		t.Fatalf("Scale = %v", s)
	}
	a.ScaleInPlace(-1)
	if a.Data()[0] != -1 || a.Data()[1] != 2 {
		t.Fatalf("ScaleInPlace = %v", a)
	}
	a.AddScalar(1)
	if a.Data()[0] != 0 || a.Data()[1] != 3 {
		t.Fatalf("AddScalar = %v", a)
	}
}

func TestAddScaledAXPY(t *testing.T) {
	a := FromSlice([]float64{1, 1, 1}, 3)
	b := FromSlice([]float64{1, 2, 3}, 3)
	a.AddScaled(0.5, b)
	want := []float64{1.5, 2, 2.5}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("AddScaled = %v, want %v", a.Data(), want)
		}
	}
}

func TestAddSubInPlace(t *testing.T) {
	a := FromSlice([]float64{5, 5}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	a.AddInPlace(b)
	if a.Data()[1] != 8 {
		t.Fatalf("AddInPlace = %v", a.Data())
	}
	a.SubInPlace(b)
	a.SubInPlace(b)
	if a.Data()[0] != 3 {
		t.Fatalf("SubInPlace = %v", a.Data())
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-0.5, 0.3, 1.7}, 3)
	a.Clamp01()
	want := []float64{0, 0.3, 1}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("Clamp01 = %v", a.Data())
		}
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	r := Apply(a, math.Sqrt)
	if r.Data()[2] != 3 {
		t.Fatalf("Apply = %v", r.Data())
	}
	if a.Data()[2] != 9 {
		t.Fatal("Apply mutated input")
	}
	a.ApplyInPlace(func(v float64) float64 { return -v })
	if a.Data()[0] != -1 {
		t.Fatalf("ApplyInPlace = %v", a.Data())
	}
}

func TestSignOf(t *testing.T) {
	a := FromSlice([]float64{-3, 0, 0.2}, 3)
	s := SignOf(a)
	want := []float64{-1, 0, 1}
	for i, w := range want {
		if s.Data()[i] != w {
			t.Fatalf("SignOf = %v", s.Data())
		}
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestEqualWithinTensors(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1 + 1e-9, 2}, 2)
	if !EqualWithin(a, b, 1e-6) {
		t.Fatal("nearly equal tensors reported unequal")
	}
	if EqualWithin(a, FromSlice([]float64{1, 2}, 1, 2), 1e-6) {
		t.Fatal("different-shape tensors reported equal")
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a.
func TestAddPropertyCommutativeInverse(t *testing.T) {
	rng := mathx.NewRNG(99)
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 3, 4)
		b := RandN(r, 3, 4)
		if !EqualWithin(Add(a, b), Add(b, a), 1e-12) {
			return false
		}
		return EqualWithin(Sub(Add(a, b), b), a, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Dot(a,a) == L2Norm(a)^2.
func TestDotNormProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 10)
		n := a.L2Norm()
		return mathx.EqualWithin(Dot(a, a), n*n, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
