package tensor

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/parallel"
)

// naiveMatMul32 is the float32 reference kernel: per output element a
// running accumulation over k in increasing order, one rounded float32
// multiply and one rounded float32 add per step. Unlike the float64
// naiveMatMul it does NOT skip a==0 terms — the packed core always adds
// them, and skipping would differ on signed zeros. Every float32 variant
// must stay bit-identical to this.
func naiveMatMul32(a, b *Tensor32) *Tensor32 {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[p*n+j]
			}
			out.data[i*n+j] = s
		}
	}
	return out
}

// equalBits32 reports bit-exact equality (distinguishes ±0, matches NaN
// payloads irrelevant here since inputs are finite).
func equalBits32(a, b *Tensor32) bool {
	if len(a.data) != len(b.data) {
		return false
	}
	for i, v := range a.data {
		if math.Float32bits(v) != math.Float32bits(b.data[i]) {
			return false
		}
	}
	return true
}

func randN32(r *mathx.RNG, shape ...int) *Tensor32 {
	return RandN(r, shape...).Float32()
}

func TestMatMul32Known(t *testing.T) {
	a := FromSlice32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice32([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul32(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul32 = %v, want %v", c.Data(), want)
		}
	}
	if c.Dim(0) != 2 || c.Dim(1) != 2 {
		t.Fatalf("MatMul32 shape = %v", c.Shape())
	}
}

func TestMatMul32ShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul32 with bad inner dims did not panic")
		}
	}()
	MatMul32(New32(2, 3), New32(2, 3))
}

// TestGEMM32BlockedMatchesNaiveExhaustive drives every (m, k, n)
// combination of the awkward shapes (same grid as the float64 suite:
// below/at/above the register tile, degenerate vectors, cache-block
// boundary crossings) through all float32 variants and demands bit-exact
// agreement with the naive reference.
func TestGEMM32BlockedMatchesNaiveExhaustive(t *testing.T) {
	r := mathx.NewRNG(99)
	for _, m := range awkwardDims {
		for _, k := range awkwardK {
			for _, n := range awkwardDims {
				a := randN32(r, m, k)
				b := randN32(r, k, n)
				a.data[0] = 0
				if k > 2 {
					b.data[k/2*n] = 0
				}
				want := naiveMatMul32(a, b)

				if got := MatMul32(a, b); !equalBits32(got, want) {
					t.Fatalf("MatMul32(%dx%d, %dx%d) != naive", m, k, k, n)
				}
				dst := randN32(r, m, n)
				MatMul32Into(dst, a, b)
				if !equalBits32(dst, want) {
					t.Fatalf("MatMul32Into(%dx%d, %dx%d) != naive", m, k, k, n)
				}
				// Transposed-B form over an explicitly transposed operand.
				bt := New32(n, k)
				for p := 0; p < k; p++ {
					for j := 0; j < n; j++ {
						bt.data[j*k+p] = b.data[p*n+j]
					}
				}
				if got := MatMul32TransB(a, bt); !equalBits32(got, want) {
					t.Fatalf("MatMul32TransB(%dx%d, %dx%d) != naive", m, k, n, k)
				}
				dst = randN32(r, m, n)
				MatMul32TransBInto(dst, a, bt)
				if !equalBits32(dst, want) {
					t.Fatalf("MatMul32TransBInto(%dx%d, %dx%d) != naive", m, k, n, k)
				}
			}
		}
	}
}

// TestGEMM32AccumMatchesNaiveExhaustive checks MatMul32Accum against a
// running-accumulation reference seeded with non-zero garbage.
func TestGEMM32AccumMatchesNaiveExhaustive(t *testing.T) {
	r := mathx.NewRNG(100)
	for _, m := range awkwardDims {
		for _, k := range awkwardK {
			for _, n := range awkwardDims {
				a := randN32(r, m, k)
				b := randN32(r, k, n)
				seed := randN32(r, m, n)

				want := seed.Clone()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						s := want.data[i*n+j]
						for p := 0; p < k; p++ {
							s += a.data[i*k+p] * b.data[p*n+j]
						}
						want.data[i*n+j] = s
					}
				}
				dst := seed.Clone()
				MatMul32Accum(dst, a, b)
				if !equalBits32(dst, want) {
					t.Fatalf("MatMul32Accum(%d,%d,%d) != running naive", m, k, n)
				}
			}
		}
	}
}

// TestGEMM32PackedAndSmallPathsAgree pins dispatch-independence: the
// packed core and the unpacked small fallback must give bit-identical
// output, so the size heuristic can be retuned without changing results.
func TestGEMM32PackedAndSmallPathsAgree(t *testing.T) {
	r := mathx.NewRNG(101)
	for _, d := range []struct{ m, k, n int }{
		{2, 4, 16}, {4, 256, 4}, {5, 257, 9}, {16, 64, 16}, {128, 128, 128}, {31, 300, 13},
	} {
		a := randN32(r, d.m, d.k)
		b := randN32(r, d.k, d.n)
		packed := New32(d.m, d.n)
		small := New32(d.m, d.n)
		gemmPacked32(packed.data, d.m, d.n, d.k, a.data, d.k, 1, b.data, d.n, 1)
		gemmSmall32(small.data, d.m, d.n, d.k, a.data, d.k, 1, b.data, d.n, 1)
		if !equalBits32(packed, small) {
			t.Fatalf("packed32 and small32 paths disagree for %dx%dx%d", d.m, d.k, d.n)
		}
	}
}

// TestMicroKernel32AsmMatchesGo pins the assembly microkernel to the
// portable scalar one bit for bit over random packed panels, including
// kc values around the unroll/blocking boundaries. On architectures
// without an assembly kernel the two are the same function and the test
// is a tautology.
func TestMicroKernel32AsmMatchesGo(t *testing.T) {
	if !useAsmKernel32 {
		t.Skip("no assembly microkernel on this architecture")
	}
	r := mathx.NewRNG(7)
	for _, kc := range []int{1, 2, 3, 4, 5, 7, 8, 255, 256, 257} {
		ap := randN32(r, kc*gemm32MR).data
		bp := randN32(r, kc*gemm32NR).data
		for _, ldc := range []int{gemm32NR, gemm32NR + 3, 40} {
			cAsm := randN32(r, gemm32MR*ldc).data
			cGo := append([]float32(nil), cAsm...)
			microKernel32(cAsm, ldc, ap, bp, kc)
			microKernel32Go(cGo, ldc, ap, bp, kc)
			for i := range cAsm {
				if math.Float32bits(cAsm[i]) != math.Float32bits(cGo[i]) {
					t.Fatalf("asm and Go microkernels disagree at kc=%d ldc=%d index %d: %x vs %x",
						kc, ldc, i, math.Float32bits(cAsm[i]), math.Float32bits(cGo[i]))
				}
			}
		}
	}
}

// TestGEMM32MultiCoreBitIdentical verifies the row-panel split: for a
// shape large enough to engage the parallel path, every worker count
// must reproduce the serial packed kernel bit for bit — each output
// element is computed entirely by one worker in the fixed k-order, so
// there is no reduction-order drift to hide. Run under -race this also
// proves the split is data-race-free.
func TestGEMM32MultiCoreBitIdentical(t *testing.T) {
	r := mathx.NewRNG(55)
	m, k, n := 131, 257, 67
	a := randN32(r, m, k)
	b := randN32(r, k, n)
	serial := New32(m, n)
	gemmPacked32(serial.data, m, n, k, a.data, k, 1, b.data, n, 1)
	for _, workers := range []int{2, 3, 5, 8} {
		got := New32(m, n)
		gemm32Rows(got.data, m, n, k, a.data, k, 1, b.data, n, 1, workers)
		if !equalBits32(got, serial) {
			t.Fatalf("gemm32Rows with %d workers != serial packed kernel", workers)
		}
	}
}

// TestMatMul32DeterministicAcrossWorkerCounts exercises the public entry
// point at a shape above gemm32ParallelLimit under different process-wide
// pool sizes and demands identical bits.
func TestMatMul32DeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetWorkers(0)
	r := mathx.NewRNG(56)
	m, k, n := 160, 128, 96 // m*n*k = 1,966,080 ≥ gemm32ParallelLimit
	a := randN32(r, m, k)
	b := randN32(r, k, n)
	parallel.SetWorkers(1)
	want := MatMul32(a, b)
	for _, workers := range []int{2, 4, 7} {
		parallel.SetWorkers(workers)
		if got := MatMul32(a, b); !equalBits32(got, want) {
			t.Fatalf("MatMul32 with %d workers differs from serial result", workers)
		}
	}
}

// TestMatMul32MatchesFloat64WithinTolerance bounds the float32 lane's
// drift against the float64 kernel. A strict per-element relative bound
// fails under catastrophic cancellation (a near-zero dot of large terms
// has huge relative error at any precision), so the bound is mixed:
// |d32 − d64| ≤ tol · (|d64| + Σ_p |a[i,p]·b[p,j]|), which reduces to the
// ISSUE's rel-err ≤ 1e-5 whenever the sum is not cancellation-dominated.
func TestMatMul32MatchesFloat64WithinTolerance(t *testing.T) {
	const tol = 1e-5
	r := mathx.NewRNG(77)
	for _, d := range []struct{ m, k, n int }{
		{16, 16, 16}, {33, 257, 19}, {128, 128, 128},
	} {
		a := RandN(r, d.m, d.k)
		b := RandN(r, d.k, d.n)
		got := MatMul32(a.Float32(), b.Float32())
		for i := 0; i < d.m; i++ {
			for j := 0; j < d.n; j++ {
				var s, absSum float64
				for p := 0; p < d.k; p++ {
					t := a.Data()[i*d.k+p] * b.Data()[p*d.n+j]
					s += t
					absSum += math.Abs(t)
				}
				g := float64(got.Data()[i*d.n+j])
				if diff := math.Abs(g - s); diff > tol*(math.Abs(s)+absSum) {
					t.Fatalf("f32 drift at (%d,%d) of %dx%dx%d: f32=%g f64=%g diff=%g bound=%g",
						i, j, d.m, d.k, d.n, g, s, diff, tol*(math.Abs(s)+absSum))
				}
			}
		}
	}
}

func TestTensor32Conversions(t *testing.T) {
	r := mathx.NewRNG(3)
	a := RandN(r, 4, 5)
	a32 := a.Float32()
	back := a32.Float64()
	for i, v := range back.Data() {
		if v != float64(a32.Data()[i]) {
			t.Fatalf("Float64 round-trip not exact at %d", i)
		}
	}
	b := New32(4, 5)
	b.CopyFrom64(a)
	if !equalBits32(a32, b) {
		t.Fatal("CopyFrom64 differs from Float32")
	}
	if got := a32.Reshape(20).Dim(0); got != 20 {
		t.Fatalf("Reshape32 dim = %d", got)
	}
}

// BenchmarkGEMM32_128 measures the float32 packed core on the 128³ shape
// (compare BenchmarkGEMM128 for the float64 lane).
func BenchmarkGEMM32_128(b *testing.B) {
	r := mathx.NewRNG(2)
	x := randN32(r, 128, 128)
	y := randN32(r, 128, 128)
	dst := New32(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul32Into(dst, x, y)
	}
}

// BenchmarkGEMM32ConvShape measures the dominant conv-layer shape of the
// tiny profile in float32 (compare BenchmarkGEMMConvShape).
func BenchmarkGEMM32ConvShape(b *testing.B) {
	r := mathx.NewRNG(3)
	w := randN32(r, 24, 108)
	cols := randN32(r, 108, 256)
	dst := New32(24, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul32Into(dst, w, cols)
	}
}
