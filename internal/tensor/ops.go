package tensor

import "repro/internal/mathx"

// Add returns a new tensor a + b (element-wise). Shapes must match.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a new tensor a - b (element-wise). Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a new tensor a * b (element-wise, Hadamard). Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Scale returns a new tensor with every element of t multiplied by s.
func Scale(t *Tensor, s float64) *Tensor {
	out := New(t.shape...)
	for i := range out.data {
		out.data[i] = t.data[i] * s
	}
	return out
}

// AddInPlace accumulates b into t (t += b). Shapes must match.
func (t *Tensor) AddInPlace(b *Tensor) {
	assertSameShape("AddInPlace", t, b)
	for i := range t.data {
		t.data[i] += b.data[i]
	}
}

// SubInPlace subtracts b from t (t -= b). Shapes must match.
func (t *Tensor) SubInPlace(b *Tensor) {
	assertSameShape("SubInPlace", t, b)
	for i := range t.data {
		t.data[i] -= b.data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled performs the AXPY update t += alpha * b. Shapes must match.
func (t *Tensor) AddScaled(alpha float64, b *Tensor) {
	assertSameShape("AddScaled", t, b)
	for i := range t.data {
		t.data[i] += alpha * b.data[i]
	}
}

// AddScalar adds s to every element of t in place.
func (t *Tensor) AddScalar(s float64) {
	for i := range t.data {
		t.data[i] += s
	}
}

// Clamp limits every element of t to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) {
	for i := range t.data {
		v := t.data[i]
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// Clamp01 limits every element to the canonical pixel range [0, 1].
func (t *Tensor) Clamp01() { t.Clamp(0, 1) }

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i := range out.data {
		out.data[i] = f(t.data[i])
	}
	return out
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
}

// SignOf returns a new tensor holding the element-wise sign of t
// (-1, 0 or +1), the quantity FGSM-family attacks step along.
func SignOf(t *Tensor) *Tensor {
	out := New(t.shape...)
	for i := range out.data {
		out.data[i] = mathx.Sign(t.data[i])
	}
	return out
}

// Dot returns the inner product of a and b viewed as flat vectors.
// Shapes must match element count.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// EqualWithin reports whether a and b have the same shape and all elements
// equal to within tol (combined absolute/relative criterion).
func EqualWithin(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if !mathx.EqualWithin(a.data[i], b.data[i], tol) {
			return false
		}
	}
	return true
}
