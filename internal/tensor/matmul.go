package tensor

import (
	"fmt"
	"sync"
)

// This file implements every matrix-multiplication variant on top of one
// shared packed, register-blocked GEMM core (gemm). The core computes
//
//	dst (+)= opA · opB
//
// where opA and opB are strided views of the operands, so the transposed
// variants (MatMulTransA/B and their Accum forms) pack their panels once
// instead of strided-reading inside the O(m·n·k) inner loop.
//
// Determinism contract: for every output element, contributions are added
// in increasing k order, one IEEE-754 add per k index, exactly like the
// historical naive kernels. Cache blocking splits the k loop, but the
// microkernel reloads the running output tile between k-blocks, so the
// sequence of rounded additions per element is unchanged (float64 stores
// are exact). Results are therefore bit-identical to the naive kernels
// for all finite inputs; the only divergence is the sign of exact zeros
// (the naive kernels skipped a==0 terms, the packed core adds them — an
// accumulator that starts at +0 can never become −0, so even that cannot
// change stored bits in practice) and non-finite operands (0·Inf).
const (
	// gemmMR×gemmNR is the register microkernel's output tile: 8 float64
	// accumulators plus the 6 per-iteration operands fit amd64's 16 XMM
	// registers (a 4×4 tile's 16 accumulators spill and run no faster
	// than the naive kernel).
	gemmMR = 4
	gemmNR = 2
	// Cache block sizes: a kc×gemmNR B sliver (8 KiB) stays L1-resident
	// across a row of microkernel calls, the packed mc×kc A block
	// (256 KiB) targets L2, and kc×nc bounds the packed B panel.
	gemmKC = 256
	gemmMC = 128
	gemmNC = 1024
	// Below this m·n·k the packing overhead outweighs the blocked core and
	// gemm falls back to the unpacked kernels (bit-identical either way).
	gemmSmallLimit = 8192
)

// gemmBufs holds the packing scratch for one in-flight gemm call. Buffers
// are pooled so the conv/dense hot loops (and every worker goroutine of
// the parallel experiment engine) reuse them instead of re-allocating
// per multiplication.
type gemmBufs struct {
	a, b, c []float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmBufs) }}

func growBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// gemm computes dst (+)= opA·opB for a row-major m×n dst, where
// opA[i][p] = a[i·ars + p·acs] and opB[p][j] = b[p·brs + j·bcs].
// accum selects += (true) versus overwrite (false). dst must not alias
// a or b.
func gemm(dst []float64, m, n, k int, a []float64, ars, acs int, b []float64, brs, bcs int, accum bool) {
	if !accum {
		clear(dst[:m*n])
	}
	if m >= 2 && n >= 2 && k >= 4 && m*n*k >= gemmSmallLimit {
		gemmPacked(dst, m, n, k, a, ars, acs, b, brs, bcs)
		return
	}
	gemmSmall(dst, m, n, k, a, ars, acs, b, brs, bcs)
}

// gemmSmall is the unpacked fallback for shapes too small to amortize
// packing. Both branches accumulate into dst per output element in
// increasing k order, matching the packed core bit for bit.
func gemmSmall(dst []float64, m, n, k int, a []float64, ars, acs int, b []float64, brs, bcs int) {
	if bcs == 1 {
		// opB rows are contiguous: stream them with the unrolled AXPY.
		for i := 0; i < m; i++ {
			drow := dst[i*n : (i+1)*n]
			ai := i * ars
			for p := 0; p < k; p++ {
				av := a[ai+p*acs]
				if av == 0 {
					continue
				}
				bo := p * brs
				axpyUnrolled(drow, b[bo:bo+n], av)
			}
		}
		return
	}
	// opB columns are strided: dot-product form, contiguous over k when
	// brs == 1 (the TransB layouts).
	for i := 0; i < m; i++ {
		ai := i * ars
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := j * bcs
			s := drow[j]
			for p := 0; p < k; p++ {
				s += a[ai+p*acs] * b[bj+p*brs]
			}
			drow[j] = s
		}
	}
}

// gemmPacked is the blocked core: loop nest jc→pc→ic over nc/kc/mc cache
// blocks, packing B into gemmNR-wide column panels and A into gemmMR-tall
// row panels, then driving the register microkernel over the block.
func gemmPacked(dst []float64, m, n, k int, a []float64, ars, acs int, b []float64, brs, bcs int) {
	bufs := gemmPool.Get().(*gemmBufs)
	kcMax := min(k, gemmKC)
	mcMax := min(m, gemmMC)
	ncMax := min(n, gemmNC)
	bufs.a = growBuf(bufs.a, roundUp(mcMax, gemmMR)*kcMax)
	bufs.b = growBuf(bufs.b, kcMax*roundUp(ncMax, gemmNR))
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(bufs.b, b, brs, bcs, pc, pc+kc, jc, jc+nc)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(bufs.a, a, ars, acs, ic, ic+mc, pc, pc+kc)
				gemmMacro(dst, n, ic, jc, mc, nc, kc, bufs.a, bufs.b)
			}
		}
	}
	gemmPool.Put(bufs)
}

func roundUp(v, to int) int { return (v + to - 1) / to * to }

// packA lays out rows [i0,i1) × columns [p0,p1) of opA as gemmMR-tall
// panels: within a panel, the gemmMR values of one k index are adjacent,
// so the microkernel reads A with unit stride. Short final panels are
// zero-padded (the pad lanes feed accumulators that are never stored).
func packA(dst, a []float64, rs, cs, i0, i1, p0, p1 int) {
	idx := 0
	for i := i0; i < i1; i += gemmMR {
		rows := min(gemmMR, i1-i)
		if rows == gemmMR && cs == 1 {
			// Contiguous operand rows: four streaming reads per panel.
			r0 := a[i*rs+p0 : i*rs+p1]
			r1 := a[(i+1)*rs+p0 : (i+1)*rs+p1]
			r2 := a[(i+2)*rs+p0 : (i+2)*rs+p1]
			r3 := a[(i+3)*rs+p0 : (i+3)*rs+p1]
			for p := range r0 {
				dst[idx] = r0[p]
				dst[idx+1] = r1[p]
				dst[idx+2] = r2[p]
				dst[idx+3] = r3[p]
				idx += gemmMR
			}
			continue
		}
		for p := p0; p < p1; p++ {
			pc := p * cs
			for r := 0; r < rows; r++ {
				dst[idx+r] = a[(i+r)*rs+pc]
			}
			for r := rows; r < gemmMR; r++ {
				dst[idx+r] = 0
			}
			idx += gemmMR
		}
	}
}

// packB lays out rows [p0,p1) × columns [j0,j1) of opB as gemmNR-wide
// panels, zero-padding short final panels.
func packB(dst, b []float64, rs, cs, p0, p1, j0, j1 int) {
	idx := 0
	for j := j0; j < j1; j += gemmNR {
		cols := min(gemmNR, j1-j)
		if cols == gemmNR && cs == 1 {
			for p := p0; p < p1; p++ {
				base := p*rs + j
				dst[idx] = b[base]
				dst[idx+1] = b[base+1]
				idx += gemmNR
			}
			continue
		}
		for p := p0; p < p1; p++ {
			pr := p * rs
			for c := 0; c < cols; c++ {
				dst[idx+c] = b[pr+(j+c)*cs]
			}
			for c := cols; c < gemmNR; c++ {
				dst[idx+c] = 0
			}
			idx += gemmNR
		}
	}
}

// gemmMacro sweeps the microkernel over one packed mc×kc × kc×nc block,
// updating dst at offset (i0, j0). Edge tiles run through a local buffer
// so the microkernel itself only ever sees full gemmMR×gemmNR tiles.
func gemmMacro(dst []float64, ldd, i0, j0, mc, nc, kc int, apack, bpack []float64) {
	for jr := 0; jr < nc; jr += gemmNR {
		nrV := min(gemmNR, nc-jr)
		bp := bpack[(jr/gemmNR)*kc*gemmNR:]
		for ir := 0; ir < mc; ir += gemmMR {
			mrV := min(gemmMR, mc-ir)
			ap := apack[(ir/gemmMR)*kc*gemmMR:]
			c := dst[(i0+ir)*ldd+j0+jr:]
			if mrV == gemmMR && nrV == gemmNR {
				microKernel(c, ldd, ap, bp, kc)
				continue
			}
			var cbuf [gemmMR * gemmNR]float64
			for r := 0; r < mrV; r++ {
				copy(cbuf[r*gemmNR:r*gemmNR+nrV], c[r*ldd:r*ldd+nrV])
			}
			microKernel(cbuf[:], gemmNR, ap, bp, kc)
			for r := 0; r < mrV; r++ {
				copy(c[r*ldd:r*ldd+nrV], cbuf[r*gemmNR:r*gemmNR+nrV])
			}
		}
	}
}

// microKernel accumulates a gemmMR×gemmNR (4×2) output tile held in eight
// scalar registers: c[r][j] += Σ_p ap[p][r]·bp[p][j] with p increasing,
// loading and storing the running tile so k-blocked calls keep the exact
// per-element addition order of an unblocked loop. The 4×2 shape keeps
// accumulators plus the six per-iteration operands within amd64's sixteen
// XMM registers — a 4×4 tile spills and runs no faster than the naive
// kernel.
func microKernel(c []float64, ldc int, ap, bp []float64, kc int) {
	c00, c01 := c[0], c[1]
	r := c[ldc:]
	c10, c11 := r[0], r[1]
	r = c[2*ldc:]
	c20, c21 := r[0], r[1]
	r = c[3*ldc:]
	c30, c31 := r[0], r[1]
	ap = ap[:kc*gemmMR]
	bp = bp[:kc*gemmNR]
	for len(ap) >= 4*gemmMR && len(bp) >= 4*gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*gemmMR:]
		bp = bp[4*gemmNR:]
	}
	for len(ap) >= gemmMR && len(bp) >= gemmNR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[gemmMR:]
		bp = bp[gemmNR:]
	}
	c[0], c[1] = c00, c01
	r = c[ldc:]
	r[0], r[1] = c10, c11
	r = c[2*ldc:]
	r[0], r[1] = c20, c21
	r = c[3*ldc:]
	r[0], r[1] = c30, c31
}

// axpyUnrolled computes dst += alpha * src with 4-way unrolling. dst and src
// must have equal length.
func axpyUnrolled(dst, src []float64, alpha float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// matmulDims checks that both operands are 2-d and returns their stored
// shapes (a is m×k, b is k2×n); each variant interprets and validates the
// inner/outer dimensions itself. Destination checking lives in checkDst.
func matmulDims(op string, a, b *Tensor) (m, k, k2, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-d operands, got %v and %v", op, a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[0], b.shape[1]
}

func checkDst(op string, dst *Tensor, m, n int) {
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

// MatMul returns the matrix product a(m×k) · b(k×n) as a new m×n tensor.
// Both operands must be 2-dimensional with compatible inner dimensions.
func MatMul(a, b *Tensor) *Tensor {
	m, k, k2, n := matmulDims("MatMul", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// A fresh tensor is already zeroed, so the accumulate path (which
	// skips gemm's clear pass) computes the identical overwrite result.
	gemm(out.data, m, n, k, a.data, k, 1, b.data, n, 1, true)
	return out
}

// MatMulInto computes dst = a(m×k) · b(k×n) in place, overwriting dst's
// contents. dst must be m×n and must not alias a or b. It is the
// allocation-free variant of MatMul for hot paths that own a scratch
// output buffer (the conv/dense forward passes).
func MatMulInto(dst, a, b *Tensor) {
	m, k, k2, n := matmulDims("MatMulInto", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	checkDst("MatMulInto", dst, m, n)
	gemm(dst.data, m, n, k, a.data, k, 1, b.data, n, 1, false)
}

// MatMulAccum computes dst += a(m×k) · b(k×n) in place. dst must be m×n.
func MatMulAccum(dst, a, b *Tensor) {
	m, k, k2, n := matmulDims("MatMulAccum", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAccum inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	checkDst("MatMulAccum", dst, m, n)
	gemm(dst.data, m, n, k, a.data, k, 1, b.data, n, 1, true)
}

// MatMulTransA returns aᵀ · b computed without materializing the
// transpose: for a m×k and b m×n the result is k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	ma, ka, mb, n := matmulDims("MatMulTransA", a, b)
	if ma != mb {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(ka, n)
	gemm(out.data, ka, n, ma, a.data, 1, ka, b.data, n, 1, false)
	return out
}

// MatMulTransAInto computes dst = aᵀ · b in place, overwriting dst. For a
// m×k and b m×n, dst must be k×n and must not alias the operands. It is
// the allocation-free variant of MatMulTransA for scratch-buffer reuse.
func MatMulTransAInto(dst, a, b *Tensor) {
	ma, ka, mb, n := matmulDims("MatMulTransAInto", a, b)
	if ma != mb {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkDst("MatMulTransAInto", dst, ka, n)
	gemm(dst.data, ka, n, ma, a.data, 1, ka, b.data, n, 1, false)
}

// MatMulAccumTransA computes dst += aᵀ · b without materializing the
// transpose or an intermediate product: for a m×k and b m×n, dst must be
// k×n. Dense.Backward uses it to accumulate the weight gradient in one
// pass.
func MatMulAccumTransA(dst, a, b *Tensor) {
	ma, ka, mb, n := matmulDims("MatMulAccumTransA", a, b)
	if ma != mb {
		panic(fmt.Sprintf("tensor: MatMulAccumTransA shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkDst("MatMulAccumTransA", dst, ka, n)
	gemm(dst.data, ka, n, ma, a.data, 1, ka, b.data, n, 1, true)
}

// MatMulTransB returns a · bᵀ where a is m×k and b is n×k; the result is m×n.
// Used in backprop where weight matrices are consumed transposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n, k2 := matmulDims("MatMulTransB", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.data, m, n, k, a.data, k, 1, b.data, 1, k, false)
	return out
}

// MatMulAccumTransB computes dst += a(m×k) · bᵀ where b is n×k, without
// materializing the transpose. dst must be m×n. This is the fused form of
// MatMulAccum(dst, a, Transpose2D(b)) used by Conv2D.Backward for the
// weight gradient.
//
// Accumulation order note: this variant has always added the *complete*
// dot product to dst in a single rounded addition (unlike the running
// accumulation of MatMulAccum/MatMulAccumTransA), so it routes the
// product through a pooled scratch matrix and then folds that into dst
// element-wise — preserving the historical rounding while the product
// itself runs through the packed core.
func MatMulAccumTransB(dst, a, b *Tensor) {
	m, k, n, k2 := matmulDims("MatMulAccumTransB", a, b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAccumTransB shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkDst("MatMulAccumTransB", dst, m, n)
	bufs := gemmPool.Get().(*gemmBufs)
	bufs.c = growBuf(bufs.c, m*n)
	gemm(bufs.c, m, n, k, a.data, k, 1, b.data, 1, k, false)
	dd := dst.data
	for i, v := range bufs.c[:m*n] {
		dd[i] += v
	}
	gemmPool.Put(bufs)
}

// Transpose2D returns the transpose of a 2-d tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D needs a 2-d tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product a(m×n) · x(n) as a length-m
// 1-d tensor.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec needs 2-d matrix and 1-d vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}
