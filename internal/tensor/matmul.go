package tensor

import "fmt"

// MatMul returns the matrix product a(m×k) · b(k×n) as a new m×n tensor.
// Both operands must be 2-dimensional with compatible inner dimensions.
//
// The loop order (i, p, j with a row-scalar broadcast) keeps the innermost
// loop streaming over contiguous memory in both b and the output, which is
// the standard cache-friendly formulation for row-major storage.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// matMulInto computes dst += nothing; it overwrites dst with A·B where A is
// m×k and B is k×n, all row-major flat slices.
func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			axpyUnrolled(drow, brow, av)
		}
	}
}

// MatMulInto computes dst = a(m×k) · b(k×n) in place, overwriting dst's
// contents. dst must be m×n and must not alias a or b. It is the
// allocation-free variant of MatMul for hot paths that own a scratch
// output buffer (the conv/dense forward passes).
func MatMulInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulInto needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n)
}

// MatMulAccum computes dst += a(m×k) · b(k×n) in place. dst must be m×n.
func MatMulAccum(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulAccum needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccum shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			axpyUnrolled(drow, brow, av)
		}
	}
}

// axpyUnrolled computes dst += alpha * src with 4-way unrolling. dst and src
// must have equal length.
func axpyUnrolled(dst, src []float64, alpha float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulAccumTransB computes dst += a(m×k) · bᵀ where b is n×k, without
// materializing the transpose. dst must be m×n. This is the fused form of
// MatMulAccum(dst, a, Transpose2D(b)) used by Conv2D.Backward for the
// weight gradient: both a's rows and b's rows stream contiguously.
func MatMulAccumTransB(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulAccumTransB needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccumTransB shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			drow[j] += s
		}
	}
}

// MatMulTransA returns aᵀ(k×m)ᵀ · b — i.e. the product of a's transpose with
// b, computed without materializing the transpose. a is m×k interpreted so
// the result is k×n for b m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransA needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	m2, n := b.shape[0], b.shape[1]
	if m != m2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(k, n)
	matMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ · b in place, overwriting dst. For a
// m×k and b m×n, dst must be k×n and must not alias the operands. It is
// the allocation-free variant of MatMulTransA for scratch-buffer reuse.
func MatMulTransAInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulTransAInto needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	m2, n := b.shape[0], b.shape[1]
	if m != m2 || dst.shape[0] != k || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulTransAInto(dst, a, b)
}

// MatMulAccumTransA computes dst += aᵀ · b without materializing the
// transpose or an intermediate product: for a m×k and b m×n, dst must be
// k×n. Dense.Backward uses it to accumulate the weight gradient in one
// pass.
func MatMulAccumTransA(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulAccumTransA needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	m2, n := b.shape[0], b.shape[1]
	if m != m2 || dst.shape[0] != k || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccumTransA shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	matMulTransAInto(dst, a, b)
}

// matMulTransAInto accumulates aᵀ·b into dst (which must be zeroed by the
// caller when overwrite semantics are wanted).
func matMulTransAInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		brow := b.data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			axpyUnrolled(dst.data[p*n:(p+1)*n], brow, av)
		}
	}
}

// MatMulTransB returns a · bᵀ where a is m×k and b is n×k; the result is m×n.
// Used in backprop where weight matrices are consumed transposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransB needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-d tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D needs a 2-d tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product a(m×n) · x(n) as a length-m
// 1-d tensor.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec needs 2-d matrix and 1-d vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}
