package tensor

import "fmt"

// MatMul returns the matrix product a(m×k) · b(k×n) as a new m×n tensor.
// Both operands must be 2-dimensional with compatible inner dimensions.
//
// The loop order (i, p, j with a row-scalar broadcast) keeps the innermost
// loop streaming over contiguous memory in both b and the output, which is
// the standard cache-friendly formulation for row-major storage.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-d operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// matMulInto computes dst += nothing; it overwrites dst with A·B where A is
// m×k and B is k×n, all row-major flat slices.
func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			axpyUnrolled(drow, brow, av)
		}
	}
}

// MatMulAccum computes dst += a(m×k) · b(k×n) in place. dst must be m×n.
func MatMulAccum(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulAccum needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccum shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			axpyUnrolled(drow, brow, av)
		}
	}
}

// axpyUnrolled computes dst += alpha * src with 4-way unrolling. dst and src
// must have equal length.
func axpyUnrolled(dst, src []float64, alpha float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulTransA returns aᵀ(k×m)ᵀ · b — i.e. the product of a's transpose with
// b, computed without materializing the transpose. a is m×k interpreted so
// the result is k×n for b m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransA needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	m2, n := b.shape[0], b.shape[1]
	if m != m2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(k, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		brow := b.data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			axpyUnrolled(out.data[p*n:(p+1)*n], brow, av)
		}
	}
	return out
}

// MatMulTransB returns a · bᵀ where a is m×k and b is n×k; the result is m×n.
// Used in backprop where weight matrices are consumed transposed.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransB needs 2-d operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-d tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D needs a 2-d tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product a(m×n) · x(n) as a length-m
// 1-d tensor.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec needs 2-d matrix and 1-d vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}
