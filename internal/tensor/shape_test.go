package tensor

import (
	"testing"

	"repro/internal/mathx"
)

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape does not share storage")
	}
	if b.At(2, 1) != 6 {
		t.Fatalf("Reshape indexing wrong")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape changing element count did not panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestFlatten(t *testing.T) {
	a := New(2, 3, 4)
	f := a.Flatten()
	if f.Dims() != 1 || f.Len() != 24 {
		t.Fatalf("Flatten shape = %v", f.Shape())
	}
}

func TestSubBatch(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	s := a.SubBatch(1, 3)
	if s.Dim(0) != 2 || s.Dim(1) != 2 {
		t.Fatalf("SubBatch shape = %v", s.Shape())
	}
	if s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("SubBatch data wrong: %v", s.Data())
	}
	s.Set(99, 0, 0)
	if a.At(1, 0) != 99 {
		t.Fatal("SubBatch does not share storage")
	}
}

func TestSubBatchOutOfRangePanics(t *testing.T) {
	a := New(4, 2)
	for _, r := range [][2]int{{-1, 2}, {0, 5}, {2, 2}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SubBatch[%d:%d] did not panic", r[0], r[1])
				}
			}()
			a.SubBatch(r[0], r[1])
		}()
	}
}

func TestImageView(t *testing.T) {
	batch := New(2, 3, 4, 4) // N=2, C=3, H=W=4
	batch.Data()[3*16+5] = 7 // image 0, channel 3? no: within image 0
	img := batch.Image(0)
	if img.Dims() != 3 || img.Dim(0) != 3 || img.Dim(1) != 4 || img.Dim(2) != 4 {
		t.Fatalf("Image view shape = %v", img.Shape())
	}
	img1 := batch.Image(1)
	img1.Set(5, 2, 3, 3)
	if batch.At(1, 2, 3, 3) != 5 {
		t.Fatal("Image view does not share storage")
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if r.Len() != 3 || r.At(0) != 4 {
		t.Fatalf("Row view wrong: %v", r.Data())
	}
	r.Set(99, 2)
	if a.At(1, 2) != 99 {
		t.Fatal("Row does not share storage")
	}
}

func TestStack(t *testing.T) {
	r := mathx.NewRNG(4)
	imgs := []*Tensor{RandN(r, 2, 3), RandN(r, 2, 3), RandN(r, 2, 3)}
	s := Stack(imgs)
	if s.Dim(0) != 3 || s.Dim(1) != 2 || s.Dim(2) != 3 {
		t.Fatalf("Stack shape = %v", s.Shape())
	}
	for i, img := range imgs {
		if s.At(i, 1, 2) != img.At(1, 2) {
			t.Fatalf("Stack data mismatch at %d", i)
		}
	}
	// Stack copies: mutating the stack must not touch the sources.
	s.Set(42, 0, 0, 0)
	if imgs[0].At(0, 0) == 42 {
		t.Fatal("Stack shares storage with sources")
	}
}

func TestStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stack with mismatched shapes did not panic")
		}
	}()
	Stack([]*Tensor{New(2, 2), New(2, 3)})
}
