// SSE 4×8 float32 GEMM microkernel.
//
// c[r][j] += sum_p ap[p*4+r] * bp[p*8+j]  for r in 0..3, j in 0..7,
// accumulated in increasing p order. Register layout:
//
//   X0,X1  row 0 accumulators (columns 0-3, 4-7)
//   X2,X3  row 1
//   X4,X5  row 2
//   X6,X7  row 3
//   X8,X9  the 8 B values for the current k step
//   X10,X11 broadcast A scalar / product scratch
//
// Only SSE1 MOVUPS/MOVSS/SHUFPS/MULPS/ADDPS are used (baseline on every
// amd64), and no FMA: each lane performs one rounded multiply then one
// rounded add per k step, exactly like the scalar Go kernel, so results
// are bit-identical to microKernel32Go.

#include "textflag.h"

// func microKernel32SSE(c *float32, ldc int, ap, bp *float32, kc int)
TEXT ·microKernel32SSE(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), DX

	SHLQ $2, CX              // ldc in bytes
	LEAQ (CX)(CX*1), R8      // 2*ldc
	LEAQ (CX)(CX*2), R9      // 3*ldc

	// Load the 4×8 C tile into the accumulators.
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	MOVUPS (DI)(CX*1), X2
	MOVUPS 16(DI)(CX*1), X3
	MOVUPS (DI)(R8*1), X4
	MOVUPS 16(DI)(R8*1), X5
	MOVUPS (DI)(R9*1), X6
	MOVUPS 16(DI)(R9*1), X7

	TESTQ DX, DX
	JZ    store

loop:
	MOVUPS (BX), X8          // b[0:4]
	MOVUPS 16(BX), X9        // b[4:8]

	MOVSS  (AX), X10         // a[0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(AX), X10        // a[1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X2
	ADDPS  X11, X3

	MOVSS  8(AX), X10        // a[2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(AX), X10       // a[3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X6
	ADDPS  X11, X7

	ADDQ $16, AX             // next packed A column (4 floats)
	ADDQ $32, BX             // next packed B row (8 floats)
	DECQ DX
	JNZ  loop

store:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, (DI)(CX*1)
	MOVUPS X3, 16(DI)(CX*1)
	MOVUPS X4, (DI)(R8*1)
	MOVUPS X5, 16(DI)(R8*1)
	MOVUPS X6, (DI)(R9*1)
	MOVUPS X7, 16(DI)(R9*1)
	RET
