package tensor

import "fmt"

// Tensor32 is a dense row-major N-dimensional float32 array — the storage
// type of the inference fast lane. It deliberately mirrors Tensor's shape
// semantics (row-major, owned shape/stride slices) but carries only the
// surface the float32 forward path needs: the float64 API stays the
// system's source of truth for training, attacks and the paper metrics,
// while Tensor32 exists to feed the widened float32 GEMM.
type Tensor32 struct {
	shape  []int
	stride []int
	data   []float32
}

// New32 allocates a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *Tensor32 {
	n := checkShape(shape)
	return &Tensor32{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   make([]float32, n),
	}
}

// FromSlice32 wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the
// shape requires.
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice32 data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor32{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   data,
	}
}

// Float32 returns a float32 copy of t, rounding every element once
// (round-to-nearest-even, the IEEE-754 float64→float32 conversion).
func (t *Tensor) Float32() *Tensor32 {
	out := New32(t.shape...)
	for i, v := range t.data {
		out.data[i] = float32(v)
	}
	return out
}

// Float64 returns a float64 copy of t. float32→float64 is exact, so
// Float32().Float64() loses only the original float64 tail bits.
func (t *Tensor32) Float64() *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = float64(v)
	}
	return out
}

// CopyFrom64 rounds src's elements into t. Shapes must match exactly.
func (t *Tensor32) CopyFrom64(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom64 size mismatch %v vs %v", t.shape, src.shape))
	}
	for i, v := range src.data {
		t.data[i] = float32(v)
	}
}

// Shape returns the tensor's dimensions (callers must not mutate it).
func (t *Tensor32) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor32) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor32) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor32) Len() int { return len(t.data) }

// Data returns the underlying storage (row-major, aliased — not a copy).
func (t *Tensor32) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor32) Clone() *Tensor32 {
	out := New32(t.shape...)
	copy(out.data, t.data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor32) Zero() { clear(t.data) }

// Reshape returns a tensor sharing t's storage with a new shape. The total
// element count must be preserved.
func (t *Tensor32) Reshape(shape ...int) *Tensor32 {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape32 %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor32{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   t.data,
	}
}
