package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestReductionsKnown(t *testing.T) {
	a := FromSlice([]float64{-1, 2, -3, 4}, 4)
	if a.Sum() != 2 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.Mean() != 0.5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 {
		t.Errorf("Max = %v", a.Max())
	}
	if a.Min() != -3 {
		t.Errorf("Min = %v", a.Min())
	}
	if a.ArgMax() != 3 {
		t.Errorf("ArgMax = %v", a.ArgMax())
	}
	if a.L1Norm() != 10 {
		t.Errorf("L1 = %v", a.L1Norm())
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("L2 = %v", got)
	}
	if a.LInfNorm() != 4 {
		t.Errorf("LInf = %v", a.LInfNorm())
	}
	if a.L0Count(0.5) != 4 {
		t.Errorf("L0 = %v", a.L0Count(0.5))
	}
	if a.L0Count(3.5) != 1 {
		t.Errorf("L0(3.5) = %v", a.L0Count(3.5))
	}
}

func TestAllFinite(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	if !a.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	a.Set(math.NaN(), 0)
	if a.AllFinite() {
		t.Fatal("NaN tensor reported finite")
	}
	a.Set(math.Inf(1), 0)
	if a.AllFinite() {
		t.Fatal("Inf tensor reported finite")
	}
}

// Norm ordering property: LInf <= L2 <= L1 for any vector.
func TestNormOrderingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 20)
		linf, l2, l1 := a.LInfNorm(), a.L2Norm(), a.L1Norm()
		return linf <= l2+1e-12 && l2 <= l1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Triangle inequality property for L2.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := RandN(r, 16)
		b := RandN(r, 16)
		return Add(a, b).L2Norm() <= a.L2Norm()+b.L2Norm()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Scaling property: ||s·a|| == |s|·||a|| for all norms.
func TestNormHomogeneityProperty(t *testing.T) {
	f := func(seed uint64, sRaw int8) bool {
		r := mathx.NewRNG(seed)
		s := float64(sRaw) / 16
		a := RandN(r, 12)
		sa := Scale(a, s)
		abs := math.Abs(s)
		return mathx.EqualWithin(sa.L1Norm(), abs*a.L1Norm(), 1e-9) &&
			mathx.EqualWithin(sa.L2Norm(), abs*a.L2Norm(), 1e-9) &&
			mathx.EqualWithin(sa.LInfNorm(), abs*a.LInfNorm(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
