package tensor

import "fmt"

// Reshape returns a tensor sharing t's storage with a new shape. The total
// element count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   t.data,
	}
}

// Flatten returns a 1-d view sharing t's storage.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(len(t.data)) }

// SubBatch returns a view of rows [from, to) along the leading dimension.
// The view shares storage with t. Used to slice mini-batches and to address
// single images inside an NCHW batch without copying.
func (t *Tensor) SubBatch(from, to int) *Tensor {
	if t.Dims() < 1 {
		panic("tensor: SubBatch on scalar")
	}
	n := t.shape[0]
	if from < 0 || to > n || from >= to {
		panic(fmt.Sprintf("tensor: SubBatch[%d:%d] out of range for leading dim %d", from, to, n))
	}
	inner := len(t.data) / n
	shape := append([]int{to - from}, t.shape[1:]...)
	return &Tensor{
		shape:  shape,
		stride: computeStrides(shape),
		data:   t.data[from*inner : to*inner],
	}
}

// Image returns a view of the i-th image in an NCHW batch as a CHW tensor
// sharing storage.
func (t *Tensor) Image(i int) *Tensor {
	if t.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Image needs an NCHW batch, got shape %v", t.shape))
	}
	sub := t.SubBatch(i, i+1)
	return sub.Reshape(t.shape[1], t.shape[2], t.shape[3])
}

// Row returns a 1-d view of row i of a 2-d tensor, sharing storage.
func (t *Tensor) Row(i int) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: Row needs a 2-d tensor")
	}
	n := t.shape[1]
	return &Tensor{
		shape:  []int{n},
		stride: []int{1},
		data:   t.data[i*n : (i+1)*n],
	}
}

// Stack concatenates equal-shaped tensors along a new leading dimension,
// producing shape [len(ts), ts[0].shape...]. Data is copied.
func Stack(ts []*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of empty slice")
	}
	inner := ts[0].shape
	for _, t := range ts[1:] {
		if !t.SameShape(ts[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", t.shape, inner))
		}
	}
	shape := append([]int{len(ts)}, inner...)
	out := New(shape...)
	step := ts[0].Len()
	for i, t := range ts {
		copy(out.data[i*step:(i+1)*step], t.data)
	}
	return out
}
