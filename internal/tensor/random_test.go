package tensor

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestRandNMoments(t *testing.T) {
	r := mathx.NewRNG(21)
	a := RandN(r, 100, 100)
	if m := a.Mean(); math.Abs(m) > 0.05 {
		t.Errorf("RandN mean = %v", m)
	}
	std := mathx.StdDev(a.Data())
	if math.Abs(std-1) > 0.05 {
		t.Errorf("RandN std = %v", std)
	}
}

func TestRandUBounds(t *testing.T) {
	r := mathx.NewRNG(22)
	a := RandU(r, -0.25, 0.75, 50, 50)
	if a.Min() < -0.25 || a.Max() >= 0.75 {
		t.Errorf("RandU out of bounds: min=%v max=%v", a.Min(), a.Max())
	}
}

func TestRandDeterministic(t *testing.T) {
	a := RandN(mathx.NewRNG(7), 10)
	b := RandN(mathx.NewRNG(7), 10)
	if !EqualWithin(a, b, 0) {
		t.Fatal("RandN not deterministic for equal seeds")
	}
}

func TestFillHeNormalScale(t *testing.T) {
	r := mathx.NewRNG(23)
	a := New(200, 50)
	fanIn := 50
	a.FillHeNormal(r, fanIn)
	std := mathx.StdDev(a.Data())
	want := math.Sqrt(2.0 / float64(fanIn))
	if math.Abs(std-want) > 0.02 {
		t.Errorf("He init std = %v, want ~%v", std, want)
	}
}

func TestFillXavierUniformBounds(t *testing.T) {
	r := mathx.NewRNG(24)
	a := New(64, 64)
	a.FillXavierUniform(r, 64, 64)
	limit := math.Sqrt(6.0 / 128.0)
	if a.Min() < -limit || a.Max() > limit {
		t.Errorf("Xavier init escaped [-%v, %v]", limit, limit)
	}
	if mathx.StdDev(a.Data()) < limit/4 {
		t.Error("Xavier init suspiciously concentrated")
	}
}
