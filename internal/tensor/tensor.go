// Package tensor implements a dense float64 N-dimensional array with the
// operations required by the hand-built neural network, filter, and attack
// code in this repository: element-wise arithmetic, AXPY updates, matrix
// multiplication, reductions, and NCHW image views.
//
// Tensors use row-major (C-order) contiguous storage. The implementation is
// deliberately simple — correctness and determinism over raw speed — but the
// hot paths (matmul, im2col) are written to be cache-friendly so the
// experiment harness runs in reasonable time on a single CPU core.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major N-dimensional float64 array.
//
// The zero value is not usable; construct tensors with New, FromSlice or the
// helpers in this package. Shape and stride slices are owned by the tensor
// and must not be mutated by callers.
type Tensor struct {
	shape  []int
	stride []int
	data   []float64
}

// New allocates a zero-filled tensor with the given shape. Every dimension
// must be positive. A tensor with no dimensions is a scalar holding one
// element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   make([]float64, n),
	}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the shape
// requires.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{
		shape:  append([]int(nil), shape...),
		stride: computeStrides(shape),
		data:   data,
	}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// checkShape validates a shape and returns the element count.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid shape %v: dimensions must be positive", shape))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	stride := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		stride[i] = acc
		acc *= shape[i]
	}
	return stride
}

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the underlying storage. Mutating it mutates the tensor; this
// is intentional and used by the hot loops in nn and filters.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has %d coordinates for %d-d tensor", idx, len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.stride[i]
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies the contents of src (which must have the same total
// element count) into t, preserving t's shape.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d vs %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description: shape plus up to eight leading
// elements. Full numeric dumps of large tensors are never useful in logs.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
