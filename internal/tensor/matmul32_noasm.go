//go:build !amd64

package tensor

// useAsmKernel32 reports whether an assembly microkernel backs
// microKernel32 on this build.
const useAsmKernel32 = false

// microKernel32 computes c[0:4][0:8] += apᵀ·bp over kc packed steps.
// Without an assembly kernel for this architecture it runs the portable
// scalar microkernel, which performs the identical per-element operation
// sequence.
func microKernel32(c []float32, ldc int, ap, bp []float32, kc int) {
	microKernel32Go(c, ldc, ap, bp, kc)
}
