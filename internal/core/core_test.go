package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	fxOnce sync.Once
	fxNet  *nn.Network
	fxErr  error
)

type remapDS struct {
	inner *gtsrb.Dataset
	remap map[int]int
}

func (d remapDS) Len() int { return d.inner.Len() }
func (d remapDS) Sample(i int) (*tensor.Tensor, int) {
	img, l := d.inner.Sample(i)
	return img, d.remap[l]
}

func coreNet(t *testing.T) *nn.Network {
	t.Helper()
	fxOnce.Do(func() {
		ds, err := gtsrb.Generate(gtsrb.Config{
			Size: 16, PerClass: 25, Seed: 31,
			Classes: []int{gtsrb.ClassStop, gtsrb.ClassSpeed60},
		})
		if err != nil {
			fxErr = err
			return
		}
		net, err := nn.TinyCNN(3, 16, 2, mathx.NewRNG(8))
		if err != nil {
			fxErr = err
			return
		}
		remap := map[int]int{gtsrb.ClassStop: 0, gtsrb.ClassSpeed60: 1}
		_, fxErr = train.Fit(net, remapDS{ds, remap}, train.Config{
			Epochs: 12, BatchSize: 10, Schedule: train.ConstantLR(3e-3), Seed: 9,
		})
		fxNet = net
	})
	if fxErr != nil {
		t.Fatalf("core fixture: %v", fxErr)
	}
	return fxNet
}

func TestRunValidation(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewLAP(4), nil)
	atk := attacks.NewBIM()
	cases := []struct {
		run Run
		ok  bool
	}{
		{Run{Pipeline: p, Attack: atk, TM: pipeline.TM3}, true},
		{Run{Pipeline: p, Attack: atk, TM: pipeline.TM2}, true},
		{Run{Pipeline: nil, Attack: atk, TM: pipeline.TM3}, false},
		{Run{Pipeline: p, Attack: nil, TM: pipeline.TM3}, false},
		{Run{Pipeline: p, Attack: atk, TM: pipeline.TM1}, false},
	}
	for i, c := range cases {
		err := c.run.Validate()
		if c.ok && err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestSectionIIIvsSectionIV is the repository's core integration test: the
// same base attack, first filter-blind (neutralized by the deployed LAP
// filter) then filter-aware (survives it) — the paper's central claim as
// one assertion pair.
func TestSectionIIIvsSectionIV(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewLAP(8), nil)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	mkAttack := func() attacks.Attack {
		return &attacks.BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 60, EarlyStop: true}
	}

	blind, err := Execute(context.Background(), Run{Pipeline: p, Attack: mkAttack(), FilterAware: false, TM: pipeline.TM3}, clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Execute(context.Background(), Run{Pipeline: p, Attack: mkAttack(), FilterAware: true, TM: pipeline.TM3}, clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	if blind.Comparison.TM1Pred != 1 {
		t.Fatalf("blind attack failed even under TM-I: %+v", blind.Comparison)
	}
	if blind.Comparison.SurvivedFilter {
		t.Fatalf("blind attack survived the filter — filters are not doing their job: %+v", blind.Comparison)
	}
	if !aware.Comparison.SurvivedFilter {
		t.Fatalf("FAdeML did not survive the filter: %+v", aware.Comparison)
	}
	if !strings.Contains(aware.Comparison.AttackName, "FAdeML") {
		t.Fatalf("aware attack name %q lacks FAdeML tag", aware.Comparison.AttackName)
	}
}

func TestExecuteTM2IncludesAcquisition(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewLAP(8), pipeline.DefaultAcquisition(3))
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	atk := &attacks.BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 60, EarlyStop: true}
	out, err := Execute(context.Background(), Run{Pipeline: p, Attack: atk, FilterAware: true, TM: pipeline.TM2}, clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker model under TM2 must mention the acquisition stage.
	if !strings.Contains(out.Comparison.AttackName, "Acq") {
		t.Fatalf("TM2 attacker model missing acquisition: %q", out.Comparison.AttackName)
	}
	// Physical-world FAdeML through quantizing acquisition is harder but
	// should still at least disturb the filtered prediction away from a
	// confident clean stop.
	if out.Comparison.TMXPred == 0 && out.Comparison.TMXConf > 0.99 {
		t.Fatalf("TM2 FAdeML left the pipeline fully confident: %+v", out.Comparison)
	}
}

func TestExecutePropagatesAttackErrors(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewLAP(4), nil)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	// DeepFool rejects targeted goals -> Execute must surface the error.
	_, err := Execute(context.Background(), Run{Pipeline: p, Attack: attacks.NewDeepFool(), TM: pipeline.TM3}, clean, 0, 1)
	if err == nil {
		t.Fatal("attack error swallowed")
	}
}

func TestExecuteInvalidRun(t *testing.T) {
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	if _, err := Execute(context.Background(), Run{}, clean, 0, 1); err == nil {
		t.Fatal("invalid run accepted")
	}
}
