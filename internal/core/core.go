// Package core orchestrates the paper's two methodologies end to end:
//
//   - Section III (analysis): run a classical, filter-blind attack against
//     the bare network, then measure what the deployed pipeline — with its
//     pre-processing noise filter — actually predicts under Threat Models
//     I and II/III.
//   - Section IV (FAdeML): run the same attack filter-aware, folding the
//     pipeline's pre-processing into the attacker's differentiable model,
//     and measure again.
//
// Everything below core (tensor/nn/filters/attacks/pipeline/analysis) is a
// substrate; everything above it (experiments, cmd tools, examples) is
// presentation. Code that wants "attack this sign through this pipeline
// and tell me what happened" calls core.Execute.
package core

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/attacks"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Run describes one attack execution against a deployed pipeline.
type Run struct {
	// Pipeline is the deployed system under attack.
	Pipeline *pipeline.Pipeline
	// Attack is the base attack from the library.
	Attack attacks.Attack
	// FilterAware selects the Section IV (FAdeML) attacker, which models
	// the pipeline's pre-processing; false is the Section III classical
	// attacker that sees only the bare network.
	FilterAware bool
	// Adaptive, when its Kind is non-empty, overrides FilterAware with an
	// explicit crafting mode: blind (bare network), bpda (through the
	// deployed chain via declared VJPs — what FilterAware selects), or
	// eot(draws=N) (BPDA plus gradient averaging over fresh draws of every
	// stochastic stage). The zero value keeps the legacy FilterAware
	// behaviour.
	Adaptive attacks.AdaptiveMode
	// Seed is the base of the adaptive EOT draw stream (only read when
	// Adaptive.Kind is "eot"); distinct seeds sample independent
	// randomness draws.
	Seed uint64
	// TM is the threat model governing where the adversarial image enters
	// the pipeline (TM2 or TM3 for filtered delivery).
	TM pipeline.ThreatModel
	// Budget caps the attack's work; the zero value is unlimited. A run
	// that exhausts it (or whose ctx is cancelled) completes with the
	// best-so-far adversarial example, flagged via AttackerResult.Truncated.
	Budget attacks.Budget
	// Observer, when set, receives per-iteration attack progress.
	Observer attacks.Observer
}

// Validate checks the run configuration.
func (r Run) Validate() error {
	if r.Pipeline == nil {
		return fmt.Errorf("core: run needs a pipeline")
	}
	if r.Attack == nil {
		return fmt.Errorf("core: run needs an attack")
	}
	if r.TM != pipeline.TM2 && r.TM != pipeline.TM3 {
		return fmt.Errorf("core: run threat model must be TM2 or TM3, got %v", r.TM)
	}
	switch r.Adaptive.Kind {
	case "", attacks.AdaptiveBlind, attacks.AdaptiveBPDA:
	case attacks.AdaptiveEOT:
		if r.Adaptive.Draws <= 0 {
			return fmt.Errorf("core: adaptive EOT needs positive draws, got %d", r.Adaptive.Draws)
		}
	default:
		return fmt.Errorf("core: unknown adaptive mode %q (have %v)", r.Adaptive.Kind, attacks.AdaptiveModes())
	}
	return nil
}

// Outcome is the result of one Execute call.
type Outcome struct {
	// AttackerResult is the attack's own view of success (through the
	// attacker's model, filtered for FAdeML, bare otherwise).
	AttackerResult *attacks.Result
	// Comparison is the deployed-side measurement: clean baseline, TM I,
	// TM II/III, Eq. 2 cost, neutralization/survival flags.
	Comparison analysis.Comparison
}

// Execute crafts an adversarial example from the clean image for the
// scenario source→target and measures it against the deployed pipeline.
// ctx cancellation and Run.Budget truncate the attack at iteration
// granularity — the outcome still carries the best-so-far adversarial
// example and its deployed-side measurement, flagged Truncated.
func Execute(ctx context.Context, run Run, clean *tensor.Tensor, source, target int) (*Outcome, error) {
	if err := run.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !run.Budget.Unlimited() {
		ctx = attacks.WithBudget(ctx, run.Budget)
	}
	if run.Observer != nil {
		ctx = attacks.WithObserver(ctx, run.Observer)
	}
	base := attacks.NetClassifier{Net: run.Pipeline.Net}
	var cls attacks.Classifier = base
	var atk attacks.Attack = run.Attack
	attackName := run.Attack.Name()
	switch {
	case run.Adaptive.Kind == attacks.AdaptiveEOT:
		// EOT crafting: the base attack differentiates through an
		// expectation over re-seeded draws of the deployed chain's
		// stochastic stages.
		model := run.Pipeline.AttackerModel(run.TM)
		cls = run.Adaptive.Classifier(base, model, run.Seed)
		attackName = fmt.Sprintf("EOT[%s|%s|draws=%d]", run.Attack.Name(), model.Name(), run.Adaptive.Draws)
	case run.Adaptive.Kind == attacks.AdaptiveBPDA,
		run.Adaptive.Kind == "" && run.FilterAware:
		fademl := attacks.NewFAdeML(run.Attack, run.Pipeline.AttackerModel(run.TM))
		atk = fademl
		attackName = fademl.Name()
	}
	res, err := atk.Generate(ctx, cls, clean, attacks.Goal{Source: source, Target: target})
	if err != nil {
		return nil, fmt.Errorf("core: attack %s: %w", attackName, err)
	}
	cmp := analysis.Compare(run.Pipeline, clean, res.Adversarial, source, target, run.TM, attackName)
	return &Outcome{AttackerResult: res, Comparison: cmp}, nil
}
