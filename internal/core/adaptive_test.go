package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// TestRunValidationAdaptive extends the Run validation table to the
// adaptive axis: known kinds pass, eot needs a positive draw count, and
// unknown kinds are rejected before any crafting.
func TestRunValidationAdaptive(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewLAP(4), nil)
	atk := attacks.NewBIM()
	cases := []struct {
		mode attacks.AdaptiveMode
		ok   bool
	}{
		{attacks.AdaptiveMode{}, true}, // zero value = legacy FilterAware
		{attacks.AdaptiveMode{Kind: attacks.AdaptiveBlind}, true},
		{attacks.AdaptiveMode{Kind: attacks.AdaptiveBPDA}, true},
		{attacks.AdaptiveMode{Kind: attacks.AdaptiveEOT, Draws: 4}, true},
		{attacks.AdaptiveMode{Kind: attacks.AdaptiveEOT}, false},
		{attacks.AdaptiveMode{Kind: attacks.AdaptiveEOT, Draws: -1}, false},
		{attacks.AdaptiveMode{Kind: "warp"}, false},
	}
	for i, c := range cases {
		err := (Run{Pipeline: p, Attack: atk, TM: pipeline.TM3, Adaptive: c.mode}).Validate()
		if c.ok && err != nil {
			t.Errorf("case %d (%+v) rejected: %v", i, c.mode, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d (%+v) accepted", i, c.mode)
		}
	}
}

// TestExecuteAdaptiveModes runs one scenario under every explicit
// crafting mode against a randomized deployed filter and pins the
// attacker-model labels: blind crafts against the bare net, bpda reuses
// the FAdeML composition, eot reports its draw count — and the whole
// run stays a pure function of (Run, image): repeating the EOT execution
// reproduces the identical adversarial example.
func TestExecuteAdaptiveModes(t *testing.T) {
	net := coreNet(t)
	p := pipeline.New(net, filters.NewRandNoise(0.05, 7), nil)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	mkRun := func(mode attacks.AdaptiveMode) Run {
		return Run{
			Pipeline: p,
			Attack:   &attacks.BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 15, EarlyStop: false},
			Adaptive: mode,
			Seed:     1,
			TM:       pipeline.TM3,
		}
	}

	blind, err := Execute(context.Background(), mkRun(attacks.AdaptiveMode{Kind: attacks.AdaptiveBlind}), clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(blind.Comparison.AttackName, "FAdeML") || strings.Contains(blind.Comparison.AttackName, "EOT") {
		t.Errorf("blind attacker model %q folds the pipeline in", blind.Comparison.AttackName)
	}

	bpda, err := Execute(context.Background(), mkRun(attacks.AdaptiveMode{Kind: attacks.AdaptiveBPDA}), clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bpda.Comparison.AttackName, "FAdeML") {
		t.Errorf("bpda attacker model %q lacks the FAdeML composition", bpda.Comparison.AttackName)
	}

	eotRun := mkRun(attacks.AdaptiveMode{Kind: attacks.AdaptiveEOT, Draws: 3})
	eot, err := Execute(context.Background(), eotRun, clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eot.Comparison.AttackName, "EOT") || !strings.Contains(eot.Comparison.AttackName, "draws=3") {
		t.Errorf("eot attacker model %q lacks the EOT[...draws=3] tag", eot.Comparison.AttackName)
	}
	again, err := Execute(context.Background(), eotRun, clean, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualWithin(eot.AttackerResult.Adversarial, again.AttackerResult.Adversarial, 0) {
		t.Error("repeating an EOT run changed the adversarial example — randomness leaked past the seed")
	}
}
