// Package experiments regenerates every table and figure of the paper's
// evaluation section: Fig. 5 (attacks under Threat Model I), Fig. 6 (top-5
// accuracy under attack, no filter), Fig. 7 (classical attacks neutralized
// by LAP/LAR under TM II/III), and Fig. 9 (FAdeML attacks surviving the
// same filters). Each figure has a typed runner returning structured
// results plus a text-table renderer, wired to a bench target in the
// repository root and to cmd/fademl-bench.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/registry"
)

// Profile sizes an experimental run. The paper's full setup (VGGNet with
// 64..512 filters, 39209 GTSRB samples) is far beyond a single-CPU budget;
// profiles keep the topology and methodology identical while scaling
// widths and sample counts (substitution documented in DESIGN.md).
type Profile struct {
	// Name tags the profile in cache paths and reports.
	Name string
	// Size is the square image side; must be a multiple of 32 (VGGNet
	// topology: five 2×2 pools).
	Size int
	// VGGScale divides the paper's filter widths {64,128,256,512,512};
	// 1 reproduces the paper's exact widths.
	VGGScale int
	// PerClass is the number of generated samples per GTSRB class.
	PerClass int
	// TrainFrac splits generation into train/test.
	TrainFrac float64
	// Epochs and BatchSize and LR control training.
	Epochs    int
	BatchSize int
	LR        float64
	// Seed drives dataset generation, initialization and training.
	Seed uint64
	// EvalSamples caps the test images used for accuracy sweeps (forward
	// passes only); 0 means the whole test split.
	EvalSamples int
	// AttackEvalSamples caps the test images that get individually
	// attacked in the Fig. 6/7/9 accuracy curves (gradient passes per
	// image; the expensive part). 0 means EvalSamples.
	AttackEvalSamples int
}

// VGGArch is the registry architecture spec of the profile's VGGNet —
// what NewEnv builds before loading weights into it. Registering an
// env's trained model records this spec in the manifest, so any later
// load can reconstruct the exact topology from the manifest alone.
func (p Profile) VGGArch() registry.ArchSpec {
	return registry.VGGSpec(nn.ScaledVGGConfig(3, p.Size, gtsrb.NumClasses, p.VGGScale))
}

// ParseProfile resolves a user-supplied profile name — the -profile CLI
// flag every binary exposes — returning an error for anything but tiny,
// default or paper (case-insensitively).
func ParseProfile(name string) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "tiny":
		return ProfileTiny(), nil
	case "default":
		return ProfileDefault(), nil
	case "paper":
		return ProfilePaper(), nil
	}
	return Profile{}, fmt.Errorf("experiments: unknown profile %q (tiny|default|paper)", name)
}

// ProfileTiny is the continuous-integration profile: smallest VGG widths,
// few samples. Figures keep their qualitative shape; runs finish in
// seconds.
func ProfileTiny() Profile {
	return Profile{
		Name: "tiny", Size: 32, VGGScale: 12,
		PerClass: 18, TrainFrac: 0.75,
		Epochs: 25, BatchSize: 16, LR: 4e-3, Seed: 1234,
		EvalSamples: 60, AttackEvalSamples: 20,
	}
}

// ProfileDefault is the bench profile used for EXPERIMENTS.md: a /8-width
// VGGNet, ~1000 training images, minutes-scale wall time on one core.
func ProfileDefault() Profile {
	return Profile{
		Name: "default", Size: 32, VGGScale: 8,
		PerClass: 36, TrainFrac: 0.78,
		Epochs: 30, BatchSize: 24, LR: 2.5e-3, Seed: 20260611,
		EvalSamples: 200, AttackEvalSamples: 48,
	}
}

// ProfilePaper keeps the paper's exact VGGNet widths (64..512). Training
// it on one CPU core takes hours; provided for full-fidelity replication.
func ProfilePaper() Profile {
	return Profile{
		Name: "paper", Size: 32, VGGScale: 1,
		PerClass: 120, TrainFrac: 0.8,
		Epochs: 12, BatchSize: 32, LR: 1e-3, Seed: 20190325,
		EvalSamples: 0, AttackEvalSamples: 500,
	}
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.Size <= 0 || p.Size%32 != 0 {
		return fmt.Errorf("experiments: profile size %d must be a positive multiple of 32", p.Size)
	}
	if p.VGGScale <= 0 {
		return fmt.Errorf("experiments: VGGScale must be positive")
	}
	if p.PerClass <= 0 || p.TrainFrac <= 0 || p.TrainFrac >= 1 {
		return fmt.Errorf("experiments: bad dataset sizing (PerClass=%d TrainFrac=%v)", p.PerClass, p.TrainFrac)
	}
	if p.Epochs <= 0 || p.BatchSize <= 0 || p.LR <= 0 {
		return fmt.Errorf("experiments: bad training config")
	}
	return nil
}

// rendererVersion invalidates cached weights when the synthetic-GTSRB
// renderer changes (its output is part of the training data).
const rendererVersion = 3

// CacheKey is a deterministic identifier covering every profile field that
// influences the trained model, plus the renderer version.
func (p Profile) CacheKey() string {
	return fmt.Sprintf("%s-r%d-s%d-v%d-n%d-t%g-e%d-b%d-lr%g-seed%d",
		p.Name, rendererVersion, p.Size, p.VGGScale, p.PerClass, p.TrainFrac, p.Epochs, p.BatchSize, p.LR, p.Seed)
}

// evalCap returns n capped to limit (0 = uncapped).
func evalCap(n, limit int) int {
	if limit <= 0 || n < limit {
		return n
	}
	return limit
}
