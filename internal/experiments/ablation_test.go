package experiments

import (
	"context"
	"testing"

	"repro/internal/filters"
)

func TestFilterStrengthAblation(t *testing.T) {
	env := tinyEnv(t)
	points := RunFilterStrengthAblation(env)
	// Identity + 5 LAP + 5 LAR.
	if len(points) != 11 {
		t.Fatalf("ablation points = %d", len(points))
	}
	if points[0].FilterName != "none" || points[0].Taps != 1 {
		t.Fatalf("baseline point wrong: %+v", points[0])
	}
	for _, p := range points {
		if p.Top5 < 0 || p.Top5 > 1 || p.Top1 > p.Top5 {
			t.Fatalf("implausible point: %+v", p)
		}
	}
	// The unfiltered baseline must beat the heaviest smoothing.
	last := points[len(points)-1] // LAR(5), 81 taps
	if last.Taps != 81 {
		t.Fatalf("last point is not LAR(5): %+v", last)
	}
	if points[0].Top5 < last.Top5 {
		t.Fatalf("LAR(5) accuracy %v above unfiltered %v — smoothing cost missing",
			last.Top5, points[0].Top5)
	}
}

func TestEtaAblation(t *testing.T) {
	env := tinyEnv(t)
	points, err := RunEtaAblation(context.Background(), env, filters.NewLAP(8), []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("eta points = %d", len(points))
	}
	// Noise must scale monotonically with eta.
	if points[0].NoiseLInf > points[1].NoiseLInf+1e-9 {
		t.Fatalf("noise at eta=0.5 (%v) exceeds eta=1 (%v)",
			points[0].NoiseLInf, points[1].NoiseLInf)
	}
	for _, p := range points {
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("confidence out of range: %+v", p)
		}
	}
}

func TestBudgetAblation(t *testing.T) {
	env := tinyEnv(t)
	points, err := RunBudgetAblation(context.Background(), env, []float64{0.02, 0.08, 0.16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("budget points = %d", len(points))
	}
	// Success must be monotone-ish: if the smallest budget succeeds, the
	// largest must too (BIM with more budget strictly dominates).
	if points[0].Success && !points[2].Success {
		t.Fatalf("success not monotone in budget: %+v", points)
	}
}

func TestFootprintAblation(t *testing.T) {
	env := tinyEnv(t)
	points := RunFootprintAblation(env, []int{1, 3})
	if len(points) != 2 {
		t.Fatalf("footprint points = %d", len(points))
	}
	for _, p := range points {
		if p.DiskTop5 < 0 || p.DiskTop5 > 1 || p.BoxTop5 < 0 || p.BoxTop5 > 1 {
			t.Fatalf("implausible accuracies: %+v", p)
		}
	}
	// The box smooths more than the disk at equal radius, so at the larger
	// radius it should not preserve more accuracy (allowing noise slack).
	if points[1].BoxTop5 > points[1].DiskTop5+0.1 {
		t.Fatalf("Box(3) accuracy %v far above LAR(3) %v", points[1].BoxTop5, points[1].DiskTop5)
	}
}
