package experiments

import (
	"fmt"

	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// Scenario is one of the paper's five targeted misclassification payloads
// (Section III-A, item 5).
type Scenario struct {
	// ID is the paper's scenario number (1..5).
	ID int
	// Name is the paper's description of the payload.
	Name string
	// Source and Target are GTSRB class ids.
	Source, Target int
}

// PaperScenarios are the five payloads of the paper's experimental setup:
// (i) stop → 60 km/h, (ii) 30 → 80 km/h, (iii) left → right turn,
// (iv) right → left turn, (v) no entry → 60 km/h.
var PaperScenarios = []Scenario{
	{1, "Stop to 60km/h", gtsrb.ClassStop, gtsrb.ClassSpeed60},
	{2, "30km/h to 80km/h", gtsrb.ClassSpeed30, gtsrb.ClassSpeed80},
	{3, "Left to Right Turn", gtsrb.ClassTurnLeft, gtsrb.ClassTurnRight},
	{4, "Right to Left Turn", gtsrb.ClassTurnRight, gtsrb.ClassTurnLeft},
	{5, "No Entry to 60km/h", gtsrb.ClassNoEntry, gtsrb.ClassSpeed60},
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	return fmt.Sprintf("Scenario %d: %s", s.ID, s.Name)
}

// CleanImage renders the scenario's canonical source-class image at the
// given resolution — the paper's "reference sample x".
func (s Scenario) CleanImage(size int) *tensor.Tensor {
	return gtsrb.Canonical(s.Source, size)
}

// SourceName and TargetName return human-readable class names.
func (s Scenario) SourceName() string { return gtsrb.ClassName(s.Source) }

// TargetName returns the target class name.
func (s Scenario) TargetName() string { return gtsrb.ClassName(s.Target) }
