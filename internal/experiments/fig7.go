package experiments

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

// SweepOptions narrows a Fig. 7 / Fig. 9 run. Zero values select the
// paper's full grid.
type SweepOptions struct {
	// Scenarios defaults to the paper's five payloads.
	Scenarios []Scenario
	// AttackNames defaults to the paper trio (lbfgs, fgsm, bim).
	AttackNames []string
	// LAPSizes and LARRadii default to the paper sweeps
	// ({4,8,16,32,64} and {1..5}).
	LAPSizes []int
	LARRadii []int
	// FilterSpecs, when set, replaces the LAP/LAR grid with arbitrary
	// filter specs ("median(r=2)", "chain(median(r=1),histeq(bins=64))",
	// "none" for the unfiltered baseline) — the defense-side counterpart
	// of AttackNames. Specs are parsed with filters.Parse; a bad spec
	// fails the sweep up front.
	FilterSpecs []string
	// IncludeCurves enables the accuracy-vs-filter curves (the expensive
	// part: every test image in the attack subset is attacked).
	IncludeCurves bool
	// CurveScenarios restricts which scenarios get accuracy curves
	// (defaults to Scenarios).
	CurveScenarios []Scenario
}

func (o *SweepOptions) fill() {
	if o.Scenarios == nil {
		o.Scenarios = PaperScenarios
	}
	if o.AttackNames == nil {
		o.AttackNames = attacks.PaperAttacks
	}
	if o.LAPSizes == nil {
		o.LAPSizes = filters.PaperLAPSizes
	}
	if o.LARRadii == nil {
		o.LARRadii = filters.PaperLARRadii
	}
	if o.CurveScenarios == nil {
		o.CurveScenarios = o.Scenarios
	}
}

// filterGrid builds the sweep's filter configurations: explicit
// FilterSpecs when given, otherwise the identity baseline plus the LAP
// and LAR sweeps.
func (o *SweepOptions) filterGrid() ([]filters.Filter, error) {
	if len(o.FilterSpecs) > 0 {
		grid := make([]filters.Filter, len(o.FilterSpecs))
		for i, spec := range o.FilterSpecs {
			f, err := filters.Parse(spec)
			if err != nil {
				return nil, fmt.Errorf("sweep filter %d: %w", i+1, err)
			}
			if f == nil {
				f = filters.Identity{}
			}
			grid[i] = f
		}
		return grid, nil
	}
	grid := []filters.Filter{filters.Identity{}}
	for _, np := range o.LAPSizes {
		grid = append(grid, filters.NewLAP(np))
	}
	for _, r := range o.LARRadii {
		grid = append(grid, filters.NewLAR(r))
	}
	return grid, nil
}

// Fig7Panel is one canonical-image cell of Fig. 7: a filter-blind attack
// evaluated through a filter under Threat Model III.
type Fig7Panel struct {
	Scenario   Scenario
	AttackName string
	FilterName string
	// TM1Pred/Conf is the unfiltered (TM-I) view of the adversarial image.
	TM1Pred int
	TM1Conf float64
	// FilteredPred/Conf is the TM-III view through the filter.
	FilteredPred int
	FilteredConf float64
	// Neutralized: TM-I hit the target but the filtered prediction
	// reverted to the source class.
	Neutralized bool
}

// Fig7Curve is one accuracy-vs-filter series of Fig. 7.
type Fig7Curve struct {
	Scenario   Scenario
	AttackName string
	// FilterNames and Top5 are parallel: Top5[i] is the top-5 accuracy of
	// the attacked subset delivered through FilterNames[i].
	FilterNames []string
	Top5        []float64
}

// Fig7Result reproduces Fig. 7: classical (filter-blind) attacks are
// neutralized by LAP/LAR smoothing at the cost of some confidence and
// accuracy, with an inverted-U accuracy profile across filter strength.
type Fig7Result struct {
	ProfileName string
	Panels      []Fig7Panel
	Curves      []Fig7Curve
	// FilterAware tags the result as a Fig. 9 run (shared machinery).
	FilterAware bool
}

// RunFig7 executes the Fig. 7 grid: filter-blind attacks, filtered
// delivery (Threat Model III).
func RunFig7(ctx context.Context, env *Env, opt SweepOptions) (*Fig7Result, error) {
	opt.fill()
	return runFilterSweep(ctx, env, opt, false)
}

// runFilterSweep is shared between Fig. 7 (filterAware=false) and Fig. 9
// (filterAware=true). The only difference is whether the attack models the
// filter during generation.
//
// The grid is executed in two parallel stages over the worker pool: the
// filter-blind generations (one per attack × scenario, reused across the
// filter axis) and then every panel cell (attack × scenario × filter —
// for Fig. 9 each cell runs its own filter-aware generation, which is
// where the bulk of the wall time goes). Cells are index-addressed, so
// the result is cell-for-cell identical to a serial sweep.
func runFilterSweep(ctx context.Context, env *Env, opt SweepOptions, filterAware bool) (*Fig7Result, error) {
	res := &Fig7Result{ProfileName: env.Profile.Name, FilterAware: filterAware}
	grid, err := opt.filterGrid()
	if err != nil {
		return nil, err
	}

	// Panels only cover real filters, never the identity baseline.
	var real []filters.Filter
	for _, f := range grid {
		if _, ok := f.(filters.Identity); !ok {
			real = append(real, f)
		}
	}
	nS, nF := len(opt.Scenarios), len(real)

	// Stage 1 (filter-blind only): one generation per attack × scenario.
	blind := make([]*tensor.Tensor, len(opt.AttackNames)*nS)
	if !filterAware {
		errs := make([]error, len(blind))
		nets := env.workerNets(gridWorkers(len(blind)))
		parallel.ForWorker(len(nets), len(blind), func(worker, t int) {
			if err := ctx.Err(); err != nil {
				errs[t] = err
				return
			}
			name := opt.AttackNames[t/nS]
			sc := opt.Scenarios[t%nS]
			atk, err := buildAttack(name)
			if err != nil {
				errs[t] = err
				return
			}
			out, err := atk.Generate(ctx, attacks.NetClassifier{Net: nets[worker]},
				sc.CleanImage(env.Profile.Size), attacks.Goal{Source: sc.Source, Target: sc.Target})
			if err != nil {
				errs[t] = fmt.Errorf("fig7 %s on %s: %w", name, sc, err)
				return
			}
			blind[t] = out.Adversarial
		})
		if err := firstErr(errs); err != nil {
			return nil, err
		}
	}

	// Stage 2: every panel cell, in the serial sweep's attack-major order.
	panels := make([]Fig7Panel, len(opt.AttackNames)*nS*nF)
	errs := make([]error, len(panels))
	nets := env.workerNets(gridWorkers(len(panels)))
	parallel.ForWorker(len(nets), len(panels), func(worker, t int) {
		if err := ctx.Err(); err != nil {
			errs[t] = err
			return
		}
		ai, rem := t/(nS*nF), t%(nS*nF)
		si, fi := rem/nF, rem%nF
		name, sc, f := opt.AttackNames[ai], opt.Scenarios[si], real[fi]
		net := nets[worker]

		adv := blind[ai*nS+si]
		if filterAware {
			atk, err := buildFilterAwareAttack(name)
			if err != nil {
				errs[t] = err
				return
			}
			out, err := attacks.NewFAdeML(atk, f).Generate(ctx, attacks.NetClassifier{Net: net},
				sc.CleanImage(env.Profile.Size), attacks.Goal{Source: sc.Source, Target: sc.Target})
			if err != nil {
				errs[t] = fmt.Errorf("fig9 %s|%s on %s: %w", name, f.Name(), sc, err)
				return
			}
			adv = out.Adversarial
		}
		p := pipeline.New(net, f, nil)
		cmp := analysisCompare(p, adv, sc)
		panels[t] = Fig7Panel{
			Scenario:     sc,
			AttackName:   attackLabel(name),
			FilterName:   f.Name(),
			TM1Pred:      cmp.tm1Pred,
			TM1Conf:      cmp.tm1Conf,
			FilteredPred: cmp.tmxPred,
			FilteredConf: cmp.tmxConf,
			Neutralized:  cmp.tm1Pred == sc.Target && cmp.tmxPred == sc.Source,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	res.Panels = panels

	// Curves: accuracy over the attacked subset per filter configuration.
	if opt.IncludeCurves {
		ds := env.attackSubset()
		curveAttacks := append([]string{"none"}, opt.AttackNames...)
		for _, sc := range opt.CurveScenarios {
			for _, name := range curveAttacks {
				curve := Fig7Curve{Scenario: sc, AttackName: attackLabel(name)}
				// Filter-blind adversarial images are reused across the
				// grid; filter-aware ones are regenerated per filter.
				var blindAdvs []*tensor.Tensor
				if name != "none" && !filterAware {
					atk, err := buildAttack(name)
					if err != nil {
						return nil, err
					}
					blindAdvs, err = adversarialFor(ctx, env, ds, atk, sc)
					if err != nil {
						return nil, fmt.Errorf("fig7 curves %s on %s: %w", name, sc, err)
					}
				}
				for _, f := range grid {
					var eval train.Dataset
					switch {
					case name == "none":
						eval = ds
					case !filterAware:
						eval = newSliceDataset(blindAdvs, ds)
					default:
						atk, err := buildFilterAwareAttack(name)
						if err != nil {
							return nil, err
						}
						var gen attacks.Attack = atk
						if _, isIdentity := f.(filters.Identity); !isIdentity {
							gen = attacks.NewFAdeML(atk, f)
						}
						advs, err := adversarialFor(ctx, env, ds, gen, sc)
						if err != nil {
							return nil, fmt.Errorf("fig9 curves %s|%s on %s: %w", name, f.Name(), sc, err)
						}
						eval = newSliceDataset(advs, ds)
					}
					p := pipeline.New(env.Net, f, nil)
					// Panel-view evaluation delivers each mini-batch through
					// the batched filter path (Filter.ApplyBatch).
					m := train.EvaluateOnBatch(env.workerNets(gridWorkers(eval.Len())), eval,
						func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
							return p.DeliverBatch(imgs, pipeline.TM3)
						})
					curve.FilterNames = append(curve.FilterNames, f.Name())
					curve.Top5 = append(curve.Top5, m.Top5)
				}
				res.Curves = append(res.Curves, curve)
			}
		}
	}
	return res, nil
}

// cmpView is a minimal internal comparison (full analysis.Comparison needs
// a clean image too; the panels only need the adversarial views).
type cmpView struct {
	tm1Pred int
	tm1Conf float64
	tmxPred int
	tmxConf float64
}

func analysisCompare(p *pipeline.Pipeline, adv *tensor.Tensor, sc Scenario) cmpView {
	// Both threat-model views of the panel cell score in one batched
	// forward; rows are bit-identical to separate Probs calls.
	views := p.ProbsViews(adv, pipeline.TM1, pipeline.TM3)
	probsI, probsX := views[0], views[1]
	pi, px := argmax(probsI), argmax(probsX)
	return cmpView{tm1Pred: pi, tm1Conf: probsI[pi], tmxPred: px, tmxConf: probsX[px]}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// NeutralizationRate returns the fraction of panels where the filter
// reverted a TM-I-successful attack to the source class.
func (r *Fig7Result) NeutralizationRate() float64 {
	applicable, neutralized := 0, 0
	for _, p := range r.Panels {
		if p.TM1Pred == p.Scenario.Target {
			applicable++
			if p.Neutralized {
				neutralized++
			}
		}
	}
	if applicable == 0 {
		return 0
	}
	return float64(neutralized) / float64(applicable)
}

// SurvivalRate returns the fraction of panels whose filtered prediction
// still hits the scenario target (the Fig. 9 headline metric).
func (r *Fig7Result) SurvivalRate() float64 {
	if len(r.Panels) == 0 {
		return 0
	}
	hits := 0
	for _, p := range r.Panels {
		if p.FilteredPred == p.Scenario.Target {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Panels))
}

// Table renders the panels grid plus any curves.
func (r *Fig7Result) Table() string {
	figName := "Fig. 7 — filter-blind attacks through LAP/LAR (TM-III)"
	if r.FilterAware {
		figName = "Fig. 9 — FAdeML filter-aware attacks through LAP/LAR (TM-III)"
	}
	t := NewTable(fmt.Sprintf("%s (profile %s)", figName, r.ProfileName),
		"Attack", "Scenario", "Filter", "TM-I view", "Filtered view", "Outcome")
	for _, p := range r.Panels {
		outcome := "-"
		switch {
		case p.FilteredPred == p.Scenario.Target:
			outcome = "SURVIVED"
		case p.Neutralized:
			outcome = "neutralized"
		case p.FilteredPred == p.Scenario.Source:
			outcome = "reverted"
		}
		t.AddRow(
			p.AttackName,
			fmt.Sprintf("%d", p.Scenario.ID),
			p.FilterName,
			fmt.Sprintf("%s @ %s", gtsrb.ClassName(p.TM1Pred), pct(p.TM1Conf)),
			fmt.Sprintf("%s @ %s", gtsrb.ClassName(p.FilteredPred), pct(p.FilteredConf)),
			outcome,
		)
	}
	out := t.String()
	if len(r.Curves) > 0 {
		ct := NewTable("Top-5 accuracy vs filter configuration",
			append([]string{"Scenario", "Attack"}, r.Curves[0].FilterNames...)...)
		for _, c := range r.Curves {
			row := []any{fmt.Sprintf("%d", c.Scenario.ID), c.AttackName}
			for _, v := range c.Top5 {
				row = append(row, pct(v))
			}
			ct.AddRow(row...)
		}
		out += "\n" + ct.String()
	}
	return out
}
