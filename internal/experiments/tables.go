package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table builder for figure reports.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// pct formats a fraction as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
