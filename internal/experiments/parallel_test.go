package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/train"
)

// runAtWorkers runs fn with the process-wide pool pinned to n workers,
// restoring the default afterwards.
func runAtWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

// TestFig7ParallelMatchesSerial is the engine's determinism contract: a
// parallel Fig. 7 run must equal a serial run cell-for-cell — panels,
// curves and derived rates — not just statistically.
func TestFig7ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is not a -short test")
	}
	env := tinyEnv(t)
	opt := SweepOptions{
		Scenarios:      PaperScenarios[:2],
		AttackNames:    []string{"fgsm", "bim"},
		LAPSizes:       []int{4, 8},
		LARRadii:       []int{1},
		IncludeCurves:  true,
		CurveScenarios: PaperScenarios[:1],
	}

	var serial, parallelRes *Fig7Result
	runAtWorkers(t, 1, func() {
		var err error
		serial, err = RunFig7(context.Background(), env, opt)
		if err != nil {
			t.Fatalf("serial RunFig7: %v", err)
		}
	})
	runAtWorkers(t, 4, func() {
		var err error
		parallelRes, err = RunFig7(context.Background(), env, opt)
		if err != nil {
			t.Fatalf("parallel RunFig7: %v", err)
		}
	})

	if len(serial.Panels) != len(parallelRes.Panels) {
		t.Fatalf("panel count: serial %d, parallel %d", len(serial.Panels), len(parallelRes.Panels))
	}
	for i := range serial.Panels {
		if !reflect.DeepEqual(serial.Panels[i], parallelRes.Panels[i]) {
			t.Errorf("panel %d differs:\nserial:   %+v\nparallel: %+v",
				i, serial.Panels[i], parallelRes.Panels[i])
		}
	}
	if !reflect.DeepEqual(serial.Curves, parallelRes.Curves) {
		t.Errorf("curves differ:\nserial:   %+v\nparallel: %+v", serial.Curves, parallelRes.Curves)
	}
	if serial.NeutralizationRate() != parallelRes.NeutralizationRate() {
		t.Errorf("neutralization rate: serial %v, parallel %v",
			serial.NeutralizationRate(), parallelRes.NeutralizationRate())
	}
}

// TestFig9ParallelMatchesSerial covers the filter-aware path, where every
// panel cell runs its own generation on a worker-local network clone.
func TestFig9ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is not a -short test")
	}
	env := tinyEnv(t)
	opt := SweepOptions{
		Scenarios:   PaperScenarios[:1],
		AttackNames: []string{"fgsm"},
		LAPSizes:    []int{4, 8},
		LARRadii:    []int{1, 2},
	}

	var serial, parallelRes *Fig7Result
	runAtWorkers(t, 1, func() {
		var err error
		serial, err = RunFig9(context.Background(), env, opt)
		if err != nil {
			t.Fatalf("serial RunFig9: %v", err)
		}
	})
	runAtWorkers(t, 4, func() {
		var err error
		parallelRes, err = RunFig9(context.Background(), env, opt)
		if err != nil {
			t.Fatalf("parallel RunFig9: %v", err)
		}
	})
	if !reflect.DeepEqual(serial.Panels, parallelRes.Panels) {
		t.Errorf("fig9 panels differ between serial and parallel runs")
	}
	if serial.SurvivalRate() != parallelRes.SurvivalRate() {
		t.Errorf("survival rate: serial %v, parallel %v",
			serial.SurvivalRate(), parallelRes.SurvivalRate())
	}
}

// TestEvaluateParallelMatchesSerial pins train.Evaluate's bit-identity
// across worker counts on the real test split.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	env := tinyEnv(t)
	ds := env.TestSet.Subset(30)
	want := train.EvaluateWorkers(env.Net, ds, nil, 1)
	for _, w := range []int{2, 4, 9} {
		got := train.EvaluateWorkers(env.Net, ds, nil, w)
		if got != want {
			t.Errorf("EvaluateWorkers(%d) = %+v, serial = %+v", w, got, want)
		}
	}
}

// TestFootprintAblationParallelMatchesSerial covers the ablation grid.
func TestFootprintAblationParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-evaluation grid comparison is not a -short test")
	}
	env := tinyEnv(t)
	var serial, par []FootprintPoint
	runAtWorkers(t, 1, func() { serial = RunFootprintAblation(env, []int{1, 2}) })
	runAtWorkers(t, 4, func() { par = RunFootprintAblation(env, []int{1, 2}) })
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("footprint ablation differs: serial %+v, parallel %+v", serial, par)
	}
}
