package experiments

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Ablations quantify the design choices the figures depend on:
//
//   - filter strength vs. clean accuracy (the inverted-U of Key Insight 2);
//   - the FAdeML η noise-scaling factor (Eq. 3) vs. survival;
//   - the attack ε budget vs. payload success;
//   - LAR's circular footprint vs. an equal-radius square box.

// FilterStrengthPoint is one sample of the clean-accuracy-vs-strength curve.
type FilterStrengthPoint struct {
	FilterName string
	Taps       int
	Top1, Top5 float64
}

// RunFilterStrengthAblation evaluates clean test accuracy through each LAP
// and LAR configuration (plus the unfiltered baseline).
func RunFilterStrengthAblation(env *Env) []FilterStrengthPoint {
	ds := env.evalSubset()
	grid := []filters.Filter{filters.Identity{}}
	for _, np := range filters.PaperLAPSizes {
		grid = append(grid, filters.NewLAP(np))
	}
	for _, r := range filters.PaperLARRadii {
		grid = append(grid, filters.NewLAR(r))
	}
	var out []FilterStrengthPoint
	nets := env.workerNets(gridWorkers(ds.Len()))
	for _, f := range grid {
		m := train.EvaluateOnBatch(nets, ds, func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
			return f.ApplyBatch(imgs)
		})
		taps := 1
		if s, ok := f.(interface{ Taps() int }); ok {
			taps = s.Taps()
		}
		out = append(out, FilterStrengthPoint{
			FilterName: f.Name(), Taps: taps, Top1: m.Top1, Top5: m.Top5,
		})
	}
	return out
}

// EtaPoint is one sample of the FAdeML η sweep.
type EtaPoint struct {
	Eta        float64
	Survived   bool
	Confidence float64
	NoiseLInf  float64
}

// RunEtaAblation sweeps the Eq. 3 noise-scaling factor for a FAdeML-BIM
// attack on scenario 1 through the given filter, measuring survival via a
// deployed pipeline.
func RunEtaAblation(ctx context.Context, env *Env, filter filters.Filter, etas []float64) ([]EtaPoint, error) {
	if len(etas) == 0 {
		etas = []float64{0.25, 0.5, 0.75, 1.0}
	}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	cls := attacks.NetClassifier{Net: env.Net}
	p := pipeline.New(env.Net, filter, nil)
	var out []EtaPoint
	for _, eta := range etas {
		fa := &attacks.FAdeML{
			Base:   &attacks.BIM{Epsilon: 0.25, Alpha: 0.02, Steps: 60, EarlyStop: true},
			Filter: filter,
			Eta:    eta,
		}
		res, err := fa.Generate(ctx, cls, clean, attacks.Goal{Source: sc.Source, Target: sc.Target})
		if err != nil {
			return nil, fmt.Errorf("eta ablation at %v: %w", eta, err)
		}
		pred, conf := p.Predict(res.Adversarial, pipeline.TM3)
		out = append(out, EtaPoint{
			Eta:        eta,
			Survived:   pred == sc.Target,
			Confidence: conf,
			NoiseLInf:  res.Noise.LInfNorm(),
		})
	}
	return out, nil
}

// BudgetPoint is one sample of the attack-budget sweep.
type BudgetPoint struct {
	Epsilon    float64
	Success    bool
	Confidence float64
}

// RunBudgetAblation sweeps the BIM ε budget against the bare network on
// scenario 1 — the knob behind Fig. 5/6.
func RunBudgetAblation(ctx context.Context, env *Env, budgets []float64) ([]BudgetPoint, error) {
	if len(budgets) == 0 {
		budgets = []float64{0.02, 0.04, 0.06, 0.08, 0.12, 0.16}
	}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	cls := attacks.NetClassifier{Net: env.Net}
	var out []BudgetPoint
	for _, eps := range budgets {
		atk := &attacks.BIM{Epsilon: eps, Alpha: eps / 10, Steps: 40, EarlyStop: true}
		res, err := atk.Generate(ctx, cls, clean, attacks.Goal{Source: sc.Source, Target: sc.Target})
		if err != nil {
			return nil, fmt.Errorf("budget ablation at %v: %w", eps, err)
		}
		out = append(out, BudgetPoint{Epsilon: eps, Success: res.Success, Confidence: res.Confidence})
	}
	return out, nil
}

// FootprintPoint compares LAR's disk against an equal-radius square box.
type FootprintPoint struct {
	Radius            int
	DiskTop5, BoxTop5 float64
}

// RunFootprintAblation contrasts the paper's circular LAR footprint with a
// square box filter of the same radius on clean accuracy. Each grid cell
// is one full evaluation fanned out over the worker pool via EvaluateOn
// (per-sample parallelism scales past the 2 × len(radii) cell count and
// is bit-identical to serial by construction).
func RunFootprintAblation(env *Env, radii []int) []FootprintPoint {
	if len(radii) == 0 {
		radii = filters.PaperLARRadii
	}
	ds := env.evalSubset()
	nets := env.workerNets(gridWorkers(ds.Len()))
	eval := func(f filters.Filter) float64 {
		return train.EvaluateOnBatch(nets, ds, func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
			return f.ApplyBatch(imgs)
		}).Top5
	}
	out := make([]FootprintPoint, len(radii))
	for i, r := range radii {
		out[i] = FootprintPoint{
			Radius:   r,
			DiskTop5: eval(filters.NewLAR(r)),
			BoxTop5:  eval(filters.NewBox(r)),
		}
	}
	return out
}
