package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/gtsrb"
)

var (
	envOnce sync.Once
	envInst *Env
	envErr  error
)

// tinyEnv trains (once per test binary) the tiny-profile VGG used by every
// figure smoke test. No disk cache: tests must not depend on testdata
// state.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envInst, envErr = NewEnv(ProfileTiny(), "", nil)
	})
	if envErr != nil {
		t.Fatalf("tiny env: %v", envErr)
	}
	return envInst
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{ProfileTiny(), ProfileDefault(), ProfilePaper()} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if p.CacheKey() == "" {
			t.Errorf("profile %s has empty cache key", p.Name)
		}
	}
	bad := ProfileTiny()
	bad.Size = 30
	if err := bad.Validate(); err == nil {
		t.Error("size 30 accepted")
	}
	bad = ProfileTiny()
	bad.TrainFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("TrainFrac 1.5 accepted")
	}
}

func TestCacheKeyDistinguishesProfiles(t *testing.T) {
	a, b := ProfileTiny(), ProfileTiny()
	b.Epochs++
	if a.CacheKey() == b.CacheKey() {
		t.Fatal("cache key ignores epochs")
	}
}

func TestScenarioTable(t *testing.T) {
	if len(PaperScenarios) != 5 {
		t.Fatalf("scenario count = %d", len(PaperScenarios))
	}
	// Paper scenario 1: stop to 60km/h.
	s1 := PaperScenarios[0]
	if s1.Source != gtsrb.ClassStop || s1.Target != gtsrb.ClassSpeed60 {
		t.Fatalf("scenario 1 = %+v", s1)
	}
	for _, sc := range PaperScenarios {
		if sc.Source == sc.Target {
			t.Fatalf("scenario %d has equal source and target", sc.ID)
		}
		if sc.CleanImage(32).Dim(1) != 32 {
			t.Fatalf("scenario %d clean image wrong size", sc.ID)
		}
		if sc.SourceName() == "" || sc.TargetName() == "" {
			t.Fatalf("scenario %d lacks names", sc.ID)
		}
		if !strings.Contains(sc.String(), sc.Name) {
			t.Fatalf("scenario String() = %q", sc.String())
		}
	}
}

func TestEnvTrainsToUsefulAccuracy(t *testing.T) {
	env := tinyEnv(t)
	if env.CleanTop5 < 0.70 {
		t.Fatalf("tiny profile clean top-5 = %.2f; too weak for figure smoke tests", env.CleanTop5)
	}
	if env.TestSet.Len() == 0 || env.TrainSet.Len() == 0 {
		t.Fatal("empty splits")
	}
}

func TestFig5Smoke(t *testing.T) {
	env := tinyEnv(t)
	res, err := RunFig5(context.Background(), env, []string{"fgsm", "bim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 { // 2 attacks × 5 scenarios
		t.Fatalf("fig5 rows = %d", len(res.Rows))
	}
	table := res.Table()
	for _, frag := range []string{"Fig. 5", "FGSM", "BIM", "Stop"} {
		if !strings.Contains(table, frag) {
			t.Errorf("fig5 table missing %q", frag)
		}
	}
	// BIM at experiment budget should achieve at least some payloads even
	// on the tiny model.
	if res.SuccessRate() == 0 {
		t.Error("fig5: no attack achieved any payload — budgets or model wrong")
	}
}

func TestFig6Smoke(t *testing.T) {
	env := tinyEnv(t)
	res, err := RunFig6(context.Background(), env, []string{"fgsm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5 {
		t.Fatalf("fig6 cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Top5 < 0 || c.Top5 > 1 {
			t.Fatalf("fig6 accuracy out of range: %+v", c)
		}
		// Attacks must not *improve* top-5 accuracy beyond noise.
		if c.Top5 > res.Baseline.Top5+0.10 {
			t.Errorf("fig6: attack increased accuracy: %+v vs baseline %.2f", c, res.Baseline.Top5)
		}
	}
	if !strings.Contains(res.Table(), "No Attack") {
		t.Error("fig6 table missing baseline row")
	}
	if res.MaxDrop() < 0 {
		t.Error("fig6 MaxDrop negative")
	}
}

func TestFig7Smoke(t *testing.T) {
	env := tinyEnv(t)
	opt := SweepOptions{
		Scenarios:      []Scenario{PaperScenarios[0]},
		AttackNames:    []string{"bim"},
		LAPSizes:       []int{8, 32},
		LARRadii:       []int{2},
		IncludeCurves:  true,
		CurveScenarios: []Scenario{PaperScenarios[0]},
	}
	res, err := RunFig7(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 { // 1 attack × 1 scenario × 3 filters
		t.Fatalf("fig7 panels = %d", len(res.Panels))
	}
	if len(res.Curves) != 2 { // none + bim
		t.Fatalf("fig7 curves = %d", len(res.Curves))
	}
	// Each curve covers identity + 3 filters.
	for _, c := range res.Curves {
		if len(c.Top5) != 4 || len(c.FilterNames) != 4 {
			t.Fatalf("fig7 curve lengths wrong: %+v", c)
		}
	}
	if res.FilterAware {
		t.Fatal("fig7 result mislabeled as filter-aware")
	}
	if !strings.Contains(res.Table(), "Fig. 7") {
		t.Error("fig7 table missing title")
	}
}

func TestFig9Smoke(t *testing.T) {
	env := tinyEnv(t)
	opt := SweepOptions{
		Scenarios:   []Scenario{PaperScenarios[0]},
		AttackNames: []string{"bim"},
		LAPSizes:    []int{8},
		LARRadii:    []int{2},
	}
	res, err := RunFig9(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FilterAware {
		t.Fatal("fig9 result not marked filter-aware")
	}
	if len(res.Panels) != 2 {
		t.Fatalf("fig9 panels = %d", len(res.Panels))
	}
	if !strings.Contains(res.Table(), "Fig. 9") {
		t.Error("fig9 table missing title")
	}
}

// TestFig7VsFig9Headline asserts the paper's central contrast on the tiny
// profile: filter-aware attacks survive filtering strictly more often than
// filter-blind ones on the same grid.
func TestFig7VsFig9Headline(t *testing.T) {
	env := tinyEnv(t)
	opt := SweepOptions{
		Scenarios:   []Scenario{PaperScenarios[0], PaperScenarios[2]},
		AttackNames: []string{"bim"},
		LAPSizes:    []int{8, 32},
		LARRadii:    []int{2},
	}
	blind, err := RunFig7(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := RunFig9(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if aware.SurvivalRate() <= blind.SurvivalRate() {
		t.Fatalf("FAdeML survival %.2f not above filter-blind %.2f",
			aware.SurvivalRate(), blind.SurvivalRate())
	}
}

func TestTableFormatter(t *testing.T) {
	tab := NewTable("Title", "A", "LongHeader")
	tab.AddRow("x", 1.23456)
	tab.AddRow("yyyy", "z")
	s := tab.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "LongHeader") {
		t.Fatalf("table missing pieces:\n%s", s)
	}
	if !strings.Contains(s, "1.23") {
		t.Fatalf("float not formatted:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestBuildAttackBudgets(t *testing.T) {
	for _, name := range []string{"fgsm", "bim", "lbfgs", "pgd", "cw", "deepfool", "jsma", "onepixel"} {
		atk, err := buildAttack(name)
		if err != nil {
			t.Fatalf("buildAttack(%q): %v", name, err)
		}
		if atk.Name() == "" {
			t.Fatalf("attack %q nameless", name)
		}
	}
	if _, err := buildAttack("bogus"); err == nil {
		t.Fatal("bogus attack accepted")
	}
	if attackLabel("lbfgs") != "L-BFGS" || attackLabel("custom") != "custom" {
		t.Fatal("attack labels wrong")
	}
}
