package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestSweepAcceptsSpecStrings pins the v2 contract that experiment
// configurations take the same attack spec strings as the CLI and the
// serving API: a parameterized spec flows through buildAttack into a
// figure runner.
func TestSweepAcceptsSpecStrings(t *testing.T) {
	env := tinyEnv(t)
	res, err := RunFig5(context.Background(), env, []string{"pgd(eps=0.06,steps=5,restarts=1)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !strings.Contains(row.AttackName, "pgd(eps=0.06") {
			t.Fatalf("row attack label %q lost the spec", row.AttackName)
		}
	}
	if _, err := RunFig5(context.Background(), env, []string{"pgd(bogus=1)"}); err == nil {
		t.Fatal("malformed spec accepted by the sweep")
	}
}

// TestSweepCancellation checks a cancelled context aborts a figure run
// with the context error rather than producing partial results.
func TestSweepCancellation(t *testing.T) {
	env := tinyEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFig5(ctx, env, []string{"fgsm"}); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}
