package experiments

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/train"
)

// Fig6Cell is one bar of the paper's Fig. 6: top-5 accuracy of the whole
// network over the test stream when every image carries one scenario's
// targeted perturbation (Threat Model I, no filter).
type Fig6Cell struct {
	Scenario   Scenario
	AttackName string
	Top1, Top5 float64
}

// Fig6Result reproduces Fig. 6.
type Fig6Result struct {
	ProfileName string
	// Baseline is the unattacked accuracy over the same subset.
	Baseline train.Metrics
	// Samples is the evaluated subset size.
	Samples int
	Cells   []Fig6Cell
}

// buildFig6Attack constructs the whole-stream attacks of Fig. 6 at the
// classic imperceptible 8/255 budget. The paper reports the attacks cost
// "up to 10%" of overall top-5 accuracy — that statement is about
// imperceptible perturbations applied to every input, not the larger
// per-payload budgets of Fig. 5, so Fig. 6 uses the smaller budget.
func buildFig6Attack(name string) (attacks.Attack, error) {
	eps := 8.0 / 255
	switch name {
	case "fgsm":
		return &attacks.FGSM{Epsilon: eps}, nil
	case "bim":
		return &attacks.BIM{Epsilon: eps, Alpha: eps / 8, Steps: 16, EarlyStop: true}, nil
	case "lbfgs":
		// A high distortion weight keeps the L-BFGS noise comparably small.
		return &attacks.LBFGS{InitialC: 40, CSteps: 3, MaxIter: 25}, nil
	default:
		return buildAttack(name)
	}
}

// RunFig6 measures top-5 accuracy under each attack × scenario over the
// profile's attack-eval subset (nil attackNames = the paper trio).
func RunFig6(ctx context.Context, env *Env, attackNames []string) (*Fig6Result, error) {
	if attackNames == nil {
		attackNames = attacks.PaperAttacks
	}
	ds := env.attackSubset()
	res := &Fig6Result{
		ProfileName: env.Profile.Name,
		Baseline:    train.EvaluateOn(env.workerNets(gridWorkers(ds.Len())), ds, nil),
		Samples:     ds.Len(),
	}
	for _, name := range attackNames {
		atk, err := buildFig6Attack(name)
		if err != nil {
			return nil, err
		}
		for _, sc := range PaperScenarios {
			advs, err := adversarialFor(ctx, env, ds, atk, sc)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s on %s: %w", name, sc, err)
			}
			m := train.EvaluateOn(env.workerNets(gridWorkers(ds.Len())), newSliceDataset(advs, ds), nil)
			res.Cells = append(res.Cells, Fig6Cell{
				Scenario:   sc,
				AttackName: attackLabel(name),
				Top1:       m.Top1,
				Top5:       m.Top5,
			})
		}
	}
	return res, nil
}

// Table renders the figure as a grid: rows = attacks (plus the no-attack
// baseline), columns = scenarios, cells = top-5 accuracy.
func (r *Fig6Result) Table() string {
	headers := []string{"Attack"}
	for _, sc := range PaperScenarios {
		headers = append(headers, fmt.Sprintf("Scen.%d", sc.ID))
	}
	t := NewTable(
		fmt.Sprintf("Fig. 6 — top-5 accuracy under attack, TM-I, no filter (%d samples, profile %s)",
			r.Samples, r.ProfileName),
		headers...)

	row := []any{"No Attack"}
	for range PaperScenarios {
		row = append(row, pct(r.Baseline.Top5))
	}
	t.AddRow(row...)

	byAttack := map[string][]Fig6Cell{}
	var order []string
	for _, c := range r.Cells {
		if _, ok := byAttack[c.AttackName]; !ok {
			order = append(order, c.AttackName)
		}
		byAttack[c.AttackName] = append(byAttack[c.AttackName], c)
	}
	for _, name := range order {
		row := []any{name}
		for _, sc := range PaperScenarios {
			val := "-"
			for _, c := range byAttack[name] {
				if c.Scenario.ID == sc.ID {
					val = pct(c.Top5)
				}
			}
			row = append(row, val)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// MaxDrop returns the largest top-5 accuracy drop (baseline minus attacked)
// across all cells — the paper reports "up to 10%".
func (r *Fig6Result) MaxDrop() float64 {
	maxDrop := 0.0
	for _, c := range r.Cells {
		if d := r.Baseline.Top5 - c.Top5; d > maxDrop {
			maxDrop = d
		}
	}
	return maxDrop
}
