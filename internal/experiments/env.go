package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/train"
)

// Env is a ready experimental setup: the synthetic GTSRB splits and a
// trained VGGNet, everything the figure runners consume.
type Env struct {
	Profile  Profile
	Net      *nn.Network
	TrainSet *gtsrb.Dataset
	TestSet  *gtsrb.Dataset
	// CleanTop1/CleanTop5 record unfiltered clean test accuracy at load
	// time, reported in every figure header.
	CleanTop1, CleanTop5 float64
}

// DefaultCacheDir is where trained weights are memoized between runs.
func DefaultCacheDir() string { return filepath.Join("testdata", "cache") }

// NewEnv generates the datasets and loads the profile's model from the
// weight cache, training (and caching) it on a miss. cacheDir may be empty
// to disable caching; log may be nil.
func NewEnv(p Profile, cacheDir string, log io.Writer) (*Env, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ds, err := gtsrb.Generate(gtsrb.Config{Size: p.Size, PerClass: p.PerClass, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset: %w", err)
	}
	trainSet, testSet := ds.Split(p.TrainFrac, p.Seed^0x5eed)

	cfg := nn.ScaledVGGConfig(3, p.Size, gtsrb.NumClasses, p.VGGScale)
	net, err := nn.VGGNet(cfg, mathx.NewRNG(p.Seed^0xce11))
	if err != nil {
		return nil, fmt.Errorf("experiments: model: %w", err)
	}

	cached := false
	var cachePath string
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, "vgg-"+p.CacheKey()+".weights")
		if err := net.LoadWeightsFile(cachePath); err == nil {
			cached = true
			if log != nil {
				fmt.Fprintf(log, "loaded cached weights: %s\n", cachePath)
			}
		}
	}
	if !cached {
		if log != nil {
			fmt.Fprintf(log, "training %s profile (%d params, %d train images, %d epochs)...\n",
				p.Name, net.ParamCount(), trainSet.Len(), p.Epochs)
		}
		_, err := train.Fit(net, trainSet, train.Config{
			Epochs:    p.Epochs,
			BatchSize: p.BatchSize,
			Schedule:  train.CosineDecay{Base: p.LR, Floor: p.LR / 10, Total: p.Epochs},
			Seed:      p.Seed ^ 0xf17,
			Log:       log,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: training: %w", err)
		}
		if cachePath != "" {
			if err := os.MkdirAll(cacheDir, 0o755); err == nil {
				if err := net.SaveWeightsFile(cachePath); err != nil && log != nil {
					fmt.Fprintf(log, "warning: weight cache write failed: %v\n", err)
				}
			}
		}
	}

	m := train.Evaluate(net, testSet, nil)
	if log != nil {
		fmt.Fprintf(log, "clean test accuracy: %s\n", m)
	}
	return &Env{
		Profile:   p,
		Net:       net,
		TrainSet:  trainSet,
		TestSet:   testSet,
		CleanTop1: m.Top1,
		CleanTop5: m.Top5,
	}, nil
}

// evalSubset returns the test subset used for accuracy sweeps.
func (e *Env) evalSubset() *gtsrb.Dataset {
	return e.TestSet.Subset(evalCap(e.TestSet.Len(), e.Profile.EvalSamples))
}

// attackSubset returns the (smaller) test subset whose images are
// individually attacked in accuracy sweeps.
func (e *Env) attackSubset() *gtsrb.Dataset {
	limit := e.Profile.AttackEvalSamples
	if limit <= 0 {
		limit = e.Profile.EvalSamples
	}
	return e.TestSet.Subset(evalCap(e.TestSet.Len(), limit))
}
