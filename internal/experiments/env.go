package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/train"
)

// Env is a ready experimental setup: the synthetic GTSRB splits and a
// trained VGGNet, everything the figure runners consume.
type Env struct {
	Profile  Profile
	Net      *nn.Network
	TrainSet *gtsrb.Dataset
	TestSet  *gtsrb.Dataset
	// CleanTop1/CleanTop5 record unfiltered clean test accuracy at load
	// time, reported in every figure header.
	CleanTop1, CleanTop5 float64

	// clones caches weight-sharing copies of Net for the worker pool so
	// their scratch buffers amortize across experiment stages.
	clonesMu sync.Mutex
	clones   []*nn.Network
}

// workerNets returns n networks that may run inference and input-gradient
// passes concurrently: slot 0 is the live network, the rest are cached
// weight-sharing clones (grown on demand). Callers must index the slice
// by worker id, never share one entry across goroutines.
func (e *Env) workerNets(n int) []*nn.Network {
	if n < 1 {
		n = 1
	}
	e.clonesMu.Lock()
	defer e.clonesMu.Unlock()
	for len(e.clones) < n-1 {
		e.clones = append(e.clones, e.Net.Clone())
	}
	nets := make([]*nn.Network, n)
	nets[0] = e.Net
	copy(nets[1:], e.clones[:n-1])
	return nets
}

// gridWorkers sizes a worker pool for a grid of n independent tasks.
func gridWorkers(n int) int {
	w := parallel.Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// firstErr returns the error with the lowest index — the same error a
// serial loop would have surfaced first — so parallel failure modes stay
// deterministic.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DefaultCacheDir is where trained weights are memoized between runs.
func DefaultCacheDir() string { return filepath.Join("testdata", "cache") }

// NewEnv generates the datasets and loads the profile's model from the
// weight cache, training (and caching) it on a miss. cacheDir may be empty
// to disable caching; log may be nil.
func NewEnv(p Profile, cacheDir string, log io.Writer) (*Env, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ds, err := gtsrb.Generate(gtsrb.Config{Size: p.Size, PerClass: p.PerClass, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset: %w", err)
	}
	trainSet, testSet := ds.Split(p.TrainFrac, p.Seed^0x5eed)

	cfg := nn.ScaledVGGConfig(3, p.Size, gtsrb.NumClasses, p.VGGScale)
	net, err := nn.VGGNet(cfg, mathx.NewRNG(p.Seed^0xce11))
	if err != nil {
		return nil, fmt.Errorf("experiments: model: %w", err)
	}

	cached := false
	var cachePath string
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, "vgg-"+p.CacheKey()+".weights")
		// Hash-verified load: a missing file is a cache miss (train below);
		// a present file that fails verification — corrupt, truncated, or
		// missing its sidecar manifest — is a hard error, never silently
		// retrained over or silently trusted.
		hash, lerr := registry.LoadFileVerified(cachePath, net)
		switch {
		case lerr == nil:
			cached = true
			if log != nil {
				fmt.Fprintf(log, "loaded cached weights: %s (sha256 %.12s…)\n", cachePath, hash)
			}
		case os.IsNotExist(lerr):
			// Cache miss.
		default:
			return nil, fmt.Errorf("experiments: weight cache: %w (delete %s to retrain)", lerr, cachePath)
		}
	}
	if !cached {
		if log != nil {
			fmt.Fprintf(log, "training %s profile (%d params, %d train images, %d epochs)...\n",
				p.Name, net.ParamCount(), trainSet.Len(), p.Epochs)
		}
		_, err := train.Fit(net, trainSet, train.Config{
			Epochs:    p.Epochs,
			BatchSize: p.BatchSize,
			Schedule:  train.CosineDecay{Base: p.LR, Floor: p.LR / 10, Total: p.Epochs},
			Seed:      p.Seed ^ 0xf17,
			Log:       log,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: training: %w", err)
		}
		if cachePath != "" {
			if err := os.MkdirAll(cacheDir, 0o755); err == nil {
				note := "experiments weight cache, profile " + p.Name
				if _, err := registry.SaveFileWithManifest(cachePath, net, registry.VGGSpec(cfg), note); err != nil && log != nil {
					fmt.Fprintf(log, "warning: weight cache write failed: %v\n", err)
				}
			}
		}
	}

	env := &Env{
		Profile:  p,
		Net:      net,
		TrainSet: trainSet,
		TestSet:  testSet,
	}
	// Evaluate through the env's clone cache so the worker networks (and
	// their scratch buffers) are warm for the figure runners that follow.
	m := train.EvaluateOn(env.workerNets(gridWorkers(testSet.Len())), testSet, nil)
	if log != nil {
		fmt.Fprintf(log, "clean test accuracy: %s\n", m)
	}
	env.CleanTop1, env.CleanTop5 = m.Top1, m.Top5
	return env, nil
}

// evalSubset returns the test subset used for accuracy sweeps.
func (e *Env) evalSubset() *gtsrb.Dataset {
	return e.TestSet.Subset(evalCap(e.TestSet.Len(), e.Profile.EvalSamples))
}

// attackSubset returns the (smaller) test subset whose images are
// individually attacked in accuracy sweeps.
func (e *Env) attackSubset() *gtsrb.Dataset {
	limit := e.Profile.AttackEvalSamples
	if limit <= 0 {
		limit = e.Profile.EvalSamples
	}
	return e.TestSet.Subset(evalCap(e.TestSet.Len(), limit))
}
