package experiments

import "context"

// RunFig9 executes the Fig. 9 grid: the same scenarios, attacks and
// LAP/LAR filter sweep as Fig. 7, but with every attack wrapped in FAdeML
// so its optimization models the deployed filter (Section IV). The
// expected contrast with Fig. 7 is the paper's headline: the filtered
// prediction keeps hitting the scenario target ("SURVIVED" panels) instead
// of reverting to the source class, while the top-5 accuracy impact of the
// attack is larger than the filtered classical attacks'.
//
// Filter-aware generation cannot share adversarial images across filter
// configurations (each filter yields a different optimum), so Fig. 9's
// curve sweep regenerates per filter; budget accordingly via
// SweepOptions.CurveScenarios.
func RunFig9(ctx context.Context, env *Env, opt SweepOptions) (*Fig7Result, error) {
	opt.fill()
	return runFilterSweep(ctx, env, opt, true)
}
