package experiments

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/gtsrb"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// buildAttack constructs a library attack with the experiment budgets used
// across all figures (slightly larger than the library defaults so the
// targeted payloads of the scenario table succeed reliably on the scaled
// VGG; recorded in EXPERIMENTS.md).
func buildAttack(name string) (attacks.Attack, error) {
	switch name {
	case "fgsm":
		return &attacks.FGSM{Epsilon: 0.05}, nil
	case "bim":
		return &attacks.BIM{Epsilon: 0.10, Alpha: 0.008, Steps: 40, EarlyStop: true}, nil
	case "lbfgs":
		return &attacks.LBFGS{InitialC: 10, CSteps: 5, MaxIter: 30}, nil
	case "pgd":
		return &attacks.PGD{Epsilon: 0.10, Alpha: 0.01, Steps: 40, Restarts: 2, Seed: 11}, nil
	case "cw":
		return &attacks.CW{Kappa: 0, Steps: 100, LR: 0.05, InitialC: 5, BinarySearch: 3}, nil
	default:
		// Anything else resolves as an attack spec string, so scenario and
		// sweep configurations can name parameterized attacks like
		// "pgd(eps=0.06,steps=10)" wherever a library name is accepted.
		return attacks.Parse(name)
	}
}

// buildFilterAwareAttack constructs the attack used inside a FAdeML
// wrapper for the Fig. 9 sweeps. A filter-aware attacker spends a larger
// budget than the filter-blind baseline: smoothing attenuates whatever
// perturbation reaches the DNN, so equal-budget comparisons would
// understate the attack the paper describes (which explicitly notes
// FAdeML's larger accuracy impact). The optimization-based attacks
// (L-BFGS, C&W) need no inflation — their real-valued noise already
// concentrates in filter-surviving low frequencies.
func buildFilterAwareAttack(name string) (attacks.Attack, error) {
	switch name {
	case "fgsm":
		return &attacks.FGSM{Epsilon: 0.25}, nil
	case "bim":
		return &attacks.BIM{Epsilon: 0.25, Alpha: 0.02, Steps: 60, EarlyStop: true}, nil
	case "pgd":
		return &attacks.PGD{Epsilon: 0.25, Alpha: 0.025, Steps: 60, Restarts: 2, Seed: 11}, nil
	case "lbfgs":
		return &attacks.LBFGS{InitialC: 5, CSteps: 6, MaxIter: 50}, nil
	case "cw":
		return &attacks.CW{Kappa: 0, Steps: 150, LR: 0.05, InitialC: 5, BinarySearch: 3}, nil
	default:
		return buildAttack(name)
	}
}

// attackLabel maps library names to the paper's figure labels.
func attackLabel(name string) string {
	switch name {
	case "lbfgs":
		return "L-BFGS"
	case "fgsm":
		return "FGSM"
	case "bim":
		return "BIM"
	default:
		return name
	}
}

// Fig5Row is one cell of the paper's Fig. 5: a targeted attack on one
// scenario evaluated under Threat Model I.
type Fig5Row struct {
	Scenario   Scenario
	AttackName string
	// Clean prediction of the source image (class id + confidence).
	CleanPred int
	CleanConf float64
	// Adversarial prediction under TM I.
	AdvPred int
	AdvConf float64
	// Success means the targeted misclassification was achieved.
	Success bool
	// NoiseLInf is the perturbation's max-norm (imperceptibility proxy).
	NoiseLInf float64
}

// Fig5Result reproduces Fig. 5: every attack forces its scenario payload
// under Threat Model I.
type Fig5Result struct {
	ProfileName string
	Rows        []Fig5Row
}

// RunFig5 attacks each scenario's canonical source image with each attack
// (nil attackNames = the paper's L-BFGS/FGSM/BIM trio) and records the
// TM-I outcome. The attack × scenario grid cells are independent, so they
// fan out over the parallel worker pool; rows land in the same
// attack-major order a serial loop would produce.
func RunFig5(ctx context.Context, env *Env, attackNames []string) (*Fig5Result, error) {
	if attackNames == nil {
		attackNames = attacks.PaperAttacks
	}
	res := &Fig5Result{ProfileName: env.Profile.Name}
	nS := len(PaperScenarios)
	tasks := len(attackNames) * nS
	rows := make([]Fig5Row, tasks)
	errs := make([]error, tasks)

	// Clean predictions are shared across the attack axis of the grid:
	// score all scenario source images in one batched forward up front
	// instead of once per cell (results are bit-identical to per-cell
	// attacks.Predict calls).
	cleanImgs := make([]*tensor.Tensor, nS)
	for i, sc := range PaperScenarios {
		cleanImgs[i] = sc.CleanImage(env.Profile.Size)
	}
	cleanPreds, cleanConfs := env.Net.PredictBatch(cleanImgs)

	nets := env.workerNets(gridWorkers(tasks))
	parallel.ForWorker(len(nets), tasks, func(worker, t int) {
		if err := ctx.Err(); err != nil {
			errs[t] = err
			return
		}
		name := attackNames[t/nS]
		sc := PaperScenarios[t%nS]
		c := attacks.NetClassifier{Net: nets[worker]}
		atk, err := buildAttack(name)
		if err != nil {
			errs[t] = err
			return
		}
		clean := cleanImgs[t%nS]
		cleanPred, cleanConf := cleanPreds[t%nS], cleanConfs[t%nS]
		out, err := atk.Generate(ctx, c, clean, attacks.Goal{Source: sc.Source, Target: sc.Target})
		if err != nil {
			errs[t] = fmt.Errorf("fig5 %s on %s: %w", name, sc, err)
			return
		}
		rows[t] = Fig5Row{
			Scenario:   sc,
			AttackName: attackLabel(name),
			CleanPred:  cleanPred,
			CleanConf:  cleanConf,
			AdvPred:    out.PredClass,
			AdvConf:    out.Confidence,
			Success:    out.PredClass == sc.Target,
			NoiseLInf:  out.Noise.LInfNorm(),
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// SuccessRate returns the fraction of rows achieving their payload.
func (r *Fig5Result) SuccessRate() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	hits := 0
	for _, row := range r.Rows {
		if row.Success {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Rows))
}

// Table renders the figure in the paper's layout: one row per
// attack × scenario with clean and adversarial predictions.
func (r *Fig5Result) Table() string {
	t := NewTable(
		fmt.Sprintf("Fig. 5 — targeted attacks under Threat Model I (profile %s)", r.ProfileName),
		"Attack", "Scenario", "Clean prediction", "Adversarial prediction", "Hit", "|noise|inf")
	for _, row := range r.Rows {
		t.AddRow(
			row.AttackName,
			fmt.Sprintf("%d: %s", row.Scenario.ID, row.Scenario.Name),
			fmt.Sprintf("%s @ %s", gtsrb.ClassName(row.CleanPred), pct(row.CleanConf)),
			fmt.Sprintf("%s @ %s", gtsrb.ClassName(row.AdvPred), pct(row.AdvConf)),
			map[bool]string{true: "yes", false: "NO"}[row.Success],
			fmt.Sprintf("%.3f", row.NoiseLInf),
		)
	}
	return t.String()
}

// adversarialFor is a sweep helper shared by Fig. 6/7: it attacks every
// image of ds toward the scenario target (filter-blind) and returns the
// adversarial images. Images already labeled as the target are attacked
// too — the paper applies the payload perturbation to the whole stream.
//
// Per-image generations are independent and fan out over the worker pool
// (attacks re-seed from their configured Seed on every Generate call, so
// sharing atk across workers is deterministic and race-free); results are
// index-addressed, keeping them identical to a serial run.
func adversarialFor(ctx context.Context, env *Env, ds *gtsrb.Dataset, atk attacks.Attack, sc Scenario) ([]*tensor.Tensor, error) {
	n := ds.Len()
	out := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	nets := env.workerNets(gridWorkers(n))
	parallel.ForWorker(len(nets), n, func(worker, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		img, label := ds.Sample(i)
		goal := attacks.Goal{Source: label, Target: sc.Target}
		if label == sc.Target {
			// Cannot target an image into its own class; use the scenario
			// source as the bookkeeping source and leave the goal valid.
			goal = attacks.Goal{Source: sc.Source, Target: sc.Target}
			if sc.Source == label {
				out[i] = img.Clone()
				return
			}
		}
		res, err := atk.Generate(ctx, attacks.NetClassifier{Net: nets[worker]}, img, goal)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = res.Adversarial
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// sliceDataset adapts a fixed set of (possibly attacked) images with the
// labels of a source dataset to train.Dataset.
type sliceDataset struct {
	imgs   []*tensor.Tensor
	labels []int
}

func newSliceDataset(imgs []*tensor.Tensor, src *gtsrb.Dataset) *sliceDataset {
	labels := make([]int, src.Len())
	for i := range labels {
		_, labels[i] = src.Sample(i)
	}
	return &sliceDataset{imgs: imgs, labels: labels}
}

func (d *sliceDataset) Len() int { return len(d.imgs) }
func (d *sliceDataset) Sample(i int) (*tensor.Tensor, int) {
	return d.imgs[i], d.labels[i]
}
