package fademl

// Facade-level tests: the public API surface the examples and tools use.
// Heavy end-to-end paths are covered by the internal packages and the
// figure benchmarks; these tests pin the re-exported surface itself.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/mathx"
	"repro/internal/nn"
)

func TestFacadeFilters(t *testing.T) {
	img := CanonicalSign(14, 32) // Stop
	for _, f := range []Filter{NewLAP(8), NewLAR(2), NewGaussian(1), NewMedian(1)} {
		out := f.Apply(img)
		if !out.SameShape(img) {
			t.Errorf("%s changed shape", f.Name())
		}
		if out.Min() < 0 || out.Max() > 1 {
			t.Errorf("%s escaped [0,1]", f.Name())
		}
	}
	chain := FilterChain(NewLAP(4), NewLAR(1))
	if !strings.Contains(chain.Name(), "lap(np=4)") || !strings.Contains(chain.Name(), "lar(r=1)") {
		t.Errorf("chain name = %q", chain.Name())
	}
}

func TestFacadeAttackRegistry(t *testing.T) {
	names := AttackNames()
	if len(names) < 8 {
		t.Fatalf("attack library too small: %v", names)
	}
	for _, name := range PaperAttacks {
		if _, err := NewAttack(name); err != nil {
			t.Errorf("paper attack %q: %v", name, err)
		}
	}
	if _, err := NewAttack("definitely-not-an-attack"); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestFacadeAttackConstructors(t *testing.T) {
	for _, a := range []Attack{NewFGSM(0.05), NewBIM(0.1, 0.01, 10), NewLBFGSAttack(20), NewCW(0)} {
		if a.Name() == "" {
			t.Error("constructor produced nameless attack")
		}
	}
}

func TestFacadeScenarios(t *testing.T) {
	if len(PaperScenarios) != 5 {
		t.Fatalf("scenario count = %d", len(PaperScenarios))
	}
	sc := PaperScenarios[0]
	if ClassName(sc.Source) != "Stop" {
		t.Errorf("scenario 1 source = %q", ClassName(sc.Source))
	}
	img := sc.CleanImage(32)
	if img.Dim(0) != 3 || img.Dim(1) != 32 {
		t.Errorf("clean image shape = %v", img.Shape())
	}
}

func TestFacadeConstants(t *testing.T) {
	if NumClasses != 43 {
		t.Errorf("NumClasses = %d", NumClasses)
	}
	if TM1.String() != "TM-I" || TM2.String() != "TM-II" || TM3.String() != "TM-III" {
		t.Error("threat model labels wrong through facade")
	}
	if Untargeted != -1 {
		t.Errorf("Untargeted = %d", Untargeted)
	}
}

func TestFacadeProfiles(t *testing.T) {
	for _, p := range []Profile{ProfileTiny(), ProfileDefault(), ProfilePaper()} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
	}
}

func TestFacadeAcquisition(t *testing.T) {
	acq := NewAcquisition(1, 0, true, 1)
	img := CanonicalSign(14, 32)
	out := acq.Apply(img)
	if !out.SameShape(img) {
		t.Error("acquisition changed shape")
	}
}

func TestFacadeParsers(t *testing.T) {
	if tm, err := ParseThreatModel("tm2"); err != nil || tm != TM2 {
		t.Errorf("ParseThreatModel(tm2) = %v, %v", tm, err)
	}
	if _, err := ParseThreatModel("tm9"); err == nil {
		t.Error("ParseThreatModel accepted tm9")
	}
	f, err := ParseFilter("LAP:32")
	if err != nil || f == nil {
		t.Fatalf("ParseFilter(LAP:32) = %v, %v", f, err)
	}
	if f.Name() != NewLAP(32).Name() {
		t.Errorf("parsed filter = %q", f.Name())
	}
	if f, err := ParseFilter("none"); err != nil || f != nil {
		t.Errorf("ParseFilter(none) = %v, %v", f, err)
	}
	if _, err := ParseFilter("LAP:zero"); err == nil {
		t.Error("ParseFilter accepted LAP:zero")
	}
}

func TestFacadeAttackSpecs(t *testing.T) {
	// ParseAttack round-trips canonical names for the whole registry.
	for _, name := range AttackNames() {
		atk, err := NewAttack(name)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := ParseAttack(atk.Name())
		if err != nil {
			t.Fatalf("ParseAttack(%q): %v", atk.Name(), err)
		}
		if rebuilt.Name() != atk.Name() {
			t.Errorf("round trip drifted: %q -> %q", atk.Name(), rebuilt.Name())
		}
	}
	if _, err := ParseAttack("pgd(eps=nope)"); err == nil {
		t.Error("malformed spec accepted")
	}
	got := SplitAttackSpecs("pgd(eps=0.03,steps=40), fgsm")
	if len(got) != 2 || got[0] != "pgd(eps=0.03,steps=40)" || got[1] != "fgsm" {
		t.Errorf("SplitAttackSpecs = %q", got)
	}
}

func TestFacadeBudgetedExecute(t *testing.T) {
	net, err := nn.TinyCNN(3, 16, 4, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(net, NewLAP(8), nil)
	atk, err := ParseAttack("bim(eps=0.1,alpha=0.01,steps=100,early=false)")
	if err != nil {
		t.Fatal(err)
	}
	var iterations int
	out, err := Execute(context.Background(), Run{
		Pipeline: pipe,
		Attack:   atk,
		TM:       TM3,
		Budget:   Budget{MaxIters: 3},
		Observer: func(p Progress) { iterations = p.Iterations },
	}, CanonicalSign(14, 16), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AttackerResult.Truncated {
		t.Fatal("3-iteration budget on a 100-step attack did not truncate")
	}
	if out.AttackerResult.Iterations != 3 || iterations != 3 {
		t.Fatalf("iterations = %d (observer saw %d), want 3",
			out.AttackerResult.Iterations, iterations)
	}
}

func TestFacadeServerAttack(t *testing.T) {
	net, err := nn.TinyCNN(3, 16, 4, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(net, NewLAP(8), nil)
	srv := NewServer(pipe, ServeOptions{
		Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond,
		AttackBudget: Budget{MaxQueries: 50},
		Render:       CanonicalSign,
	})
	defer srv.Close()
	out, err := srv.Attack(context.Background(), ServeAttackRequest{
		Spec: "fgsm(eps=0.05)", Source: 2, Target: 1, TM: TM3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.AttackerResult.Queries <= 0 {
		t.Fatalf("served attack reported %d queries", out.AttackerResult.Queries)
	}
	eval, err := srv.Evaluate(context.Background(), ServeEvaluateRequest{
		Specs: []string{"fgsm(eps=0.05)"},
		Cases: []EvalCase{{Source: 2, Target: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eval.Cells) != 1 || len(eval.Summaries) != 1 {
		t.Fatalf("evaluate = %+v", eval)
	}
}

func TestFacadeServer(t *testing.T) {
	net, err := nn.TinyCNN(3, 16, 4, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(net, NewLAP(8), NewAcquisition(1.0, 1.0/255, true, 7))
	srv := NewServer(pipe, ServeOptions{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond})
	defer srv.Close()
	img := CanonicalSign(14, 16)
	pred, err := srv.Predict(context.Background(), img, TM2)
	if err != nil {
		t.Fatal(err)
	}
	want := pipe.Probs(img, TM2)
	if pred.Class != mathx.ArgMax(want) || pred.Prob != want[pred.Class] {
		t.Fatalf("served prediction %+v differs from direct pipeline call", pred)
	}
	if st := srv.Stats(); st.Requests != 1 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
