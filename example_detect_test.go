package fademl_test

import (
	"context"
	"fmt"

	fademl "repro"
)

// Example (detect) walks detection-as-a-service end to end: build the
// feature-squeezing discrepancy ensemble from a spec, serve with the
// detect-then-correct route enabled, calibrate the flag threshold to a
// target clean false-positive rate, and score traffic — inline on every
// prediction and on demand with the per-squeezer breakdown.
func Example_detect() {
	// Detector specs use the attack/filter grammar and round-trip; bare
	// "detect" selects the default bit-depth + median ensemble.
	det, err := fademl.ParseDetector("detect")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(det.Name())

	arch := fademl.ArchSpec{Family: "tinycnn", InChannels: 3, InSize: 16, Classes: fademl.NumClasses}
	net, err := arch.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := fademl.NewServer(fademl.NewPipeline(net, fademl.NewLAP(8), nil), fademl.ServeOptions{
		Detector: det,
	})
	defer srv.Close()

	// Calibrate before taking traffic: a clean FPR of 0 sets the
	// threshold at the highest clean score, so no calibration image can
	// be flagged (the flag rule is strictly score > threshold).
	clean := make([]*fademl.Tensor, 8)
	for c := range clean {
		clean[c] = fademl.CanonicalSign(c, 16)
	}
	if _, err := srv.CalibrateDetector(context.Background(), clean, 0); err != nil {
		fmt.Println(err)
		return
	}

	// With ServeOptions.Detector set, every external prediction carries a
	// verdict; unflagged traffic is answered bit-identically to a
	// non-detecting server, flagged inputs are re-routed through the
	// correction chain and marked Corrected.
	pred, err := srv.Predict(context.Background(), clean[0], fademl.TM1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("clean flagged: %v, corrected: %v\n", pred.Detection.Flagged, pred.Detection.Corrected)

	// Detect scores on demand — verdict plus per-squeezer breakdown —
	// without rewriting the prediction.
	res, err := srv.Detect(context.Background(), fademl.ServeDetectRequest{Image: clean[1]})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("squeezers scored: %d, flagged: %v\n", len(res.Verdict.PerSqueezer), res.Verdict.Flagged)

	// Output:
	// detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=1)
	// clean flagged: false, corrected: false
	// squeezers scored: 2, flagged: false
}
