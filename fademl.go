// Package fademl is the public facade of the FAdeML reproduction: a
// from-scratch Go implementation of "FAdeML: Understanding the Impact of
// Pre-Processing Noise Filtering on Adversarial Machine Learning"
// (Khalid et al., DATE 2019), grown into a concurrent
// adversarial-robustness service.
//
// ARCHITECTURE.md is the one-page system map — layers, concurrency
// model, and the invariants each layer guarantees. FILTERS.md documents
// the defense library and its spec syntax; ATTACKS.md documents the
// attack library, budgets and truncation; PERFORMANCE.md tracks the
// performance trajectory PR by PR.
//
// The library provides, all on the standard library alone:
//
//   - a float64 tensor/neural-network substrate with the paper's VGGNet
//     topology (internal/tensor, internal/nn, internal/train);
//   - a procedural 43-class GTSRB substitute (internal/gtsrb);
//   - the defense library: the paper's LAP/LAR noise filters with exact
//     adjoints, the classical smoothers (Gaussian, median, box,
//     bilateral, non-local means), the Section I-C pre-processing stages
//     (grayscale, normalization, histogram equalization) and the classic
//     adversarial defenses (JPEG-like DCT quantization, bit-depth
//     squeezing, total-variation denoising) — all parameterized,
//     batchable and chainable via spec strings (internal/filters);
//   - an adversarial attack library — L-BFGS, FGSM, BIM, MIM, PGD,
//     DeepFool, C&W, JSMA, one-pixel, SPSA — and the FAdeML filter-aware
//     wrapper (internal/attacks);
//   - the threat-model pipeline of the paper's Fig. 2 and the Section III
//     analysis methodology (internal/pipeline, internal/analysis);
//   - experiment runners regenerating Figs. 5/6/7/9 (internal/experiments);
//   - an online inference service with dynamic micro-batching, plus
//     robustness- and defense-as-a-service endpoints (internal/serve,
//     cmd/fademl-serve);
//   - a feature-squeezing discrepancy detector — an ensemble of cheap
//     squeezers whose prediction disagreement scores adversarial inputs —
//     served on demand (/v1/detect) or inline as a detect-then-correct
//     routing mode (internal/detect, ServeOptions.Detector).
//
// This package re-exports the surface a downstream user needs so examples
// and tools read naturally. Attacks AND filters are declarative spec
// strings, and every attack execution is context-aware, budgeted and
// cancellable:
//
//	env, _ := fademl.NewEnv(fademl.ProfileTiny(), "", nil)
//	flt, _ := fademl.ParseFilter("chain(median(r=1),lap(np=32))")
//	p := fademl.NewPipeline(env.Net, flt, nil)
//	atk, _ := fademl.ParseAttack("bim(eps=0.1,steps=40)")
//	out, _ := fademl.Execute(ctx, fademl.Run{
//	    Pipeline: p, Attack: atk, FilterAware: true, TM: fademl.TM3,
//	    Budget: fademl.Budget{MaxQueries: 500},
//	}, img, src, dst)
//	if out.AttackerResult.Truncated { /* budget hit; best-so-far result */ }
//
// Serving the same pipeline online — concurrent clients coalesce into
// batched forwards (the filter stage runs batched too), each response
// bit-identical to a direct Probs call, and the robustness/defense
// endpoints craft attacks and sweep filters server-side under a hard
// budget:
//
//	srv := fademl.NewServer(p, fademl.ServeOptions{MaxBatch: 16})
//	defer srv.Close()
//	pred, _ := srv.Predict(ctx, img, fademl.TM2)
//	http.ListenAndServe(":8080", srv.Handler()) // /v1/predict, /v1/defend,
//	                                            // /v1/attack, /v1/evaluate,
//	                                            // ... (or: cmd/fademl-serve)
package fademl

import (
	"context"
	"io"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/filters"
	"repro/internal/front"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Parallelism.
//
// The experiment engine (figure runners, train.Evaluate, the ablations)
// fans independent grid cells out over a process-wide bounded worker
// pool; results are bit-identical to a serial run regardless of pool
// size. Individual networks stay single-threaded — concurrency comes
// from weight-sharing clones (Network.Clone), one per worker.

// SetWorkers sets the process-wide experiment worker pool size. n <= 0
// resets to runtime.NumCPU(); 1 runs everything serially.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// WorkerCount returns the current worker pool size.
func WorkerCount() int { return parallel.Workers() }

// Core value types re-exported from the internal packages.
type (
	// Tensor is a dense float64 N-d array (images are CHW in [0, 1]).
	Tensor = tensor.Tensor
	// Network is a trained sequential classifier.
	Network = nn.Network
	// Filter is one pre-processing stage (Apply + VJP).
	Filter = filters.Filter
	// Attack generates adversarial examples.
	Attack = attacks.Attack
	// Goal selects the attack payload (source and target classes).
	Goal = attacks.Goal
	// Result is an attack outcome (Truncated marks budget-cut runs).
	Result = attacks.Result
	// Budget caps an attack run's work (queries, iterations, deadline).
	Budget = attacks.Budget
	// Observer receives per-iteration attack progress callbacks.
	Observer = attacks.Observer
	// Progress is one observer checkpoint.
	Progress = attacks.Progress
	// Param describes one spec-settable attack knob.
	Param = attacks.Param
	// ConfigurableAttack is an attack exposing Params()/Set knobs.
	ConfigurableAttack = attacks.Configurable
	// FilterParam describes one spec-settable filter knob.
	FilterParam = filters.Param
	// ConfigurableFilter is a filter exposing Params()/Set knobs.
	ConfigurableFilter = filters.Configurable
	// Classifier is the attacker's differentiable model interface.
	Classifier = attacks.Classifier
	// AdaptiveMode selects how an attacker models the deployed
	// pre-processing chain: blind, bpda, or eot(draws=N).
	AdaptiveMode = attacks.AdaptiveMode
	// StochasticFilter is a randomized filter whose output is a pure
	// function of (Seed(), input); WithSeed derives fresh draws.
	StochasticFilter = filters.Stochastic
	// Pipeline is the deployed inference system of the paper's Fig. 2.
	Pipeline = pipeline.Pipeline
	// Acquisition simulates the data-capture stage of Threat Model II.
	Acquisition = pipeline.Acquisition
	// ThreatModel selects where the adversary enters the pipeline.
	ThreatModel = pipeline.ThreatModel
	// Precision selects the numeric lane a prediction runs on: the
	// float64 reference lane or the float32 serving fast path.
	Precision = pipeline.Precision
	// Net32 is a frozen float32 inference snapshot of a Network with
	// fused conv+ReLU / dense+ReLU kernels (Network.ToFloat32).
	Net32 = nn.Net32
	// Comparison is a Section III methodology measurement.
	Comparison = analysis.Comparison
	// Run couples a pipeline, an attack and a threat model for Execute.
	Run = core.Run
	// Outcome is Execute's result: attacker view plus deployed view.
	Outcome = core.Outcome
	// Scenario is one of the paper's five targeted payloads.
	Scenario = experiments.Scenario
	// Profile sizes an experimental run.
	Profile = experiments.Profile
	// Env is a generated dataset plus trained model.
	Env = experiments.Env
	// SweepOptions narrows the Fig. 7 / Fig. 9 grids.
	SweepOptions = experiments.SweepOptions
	// Server is the micro-batching online inference service.
	Server = serve.Server
	// ServeOptions configures a Server (workers, batch size, linger).
	ServeOptions = serve.Options
	// Prediction is one served inference result.
	Prediction = serve.Prediction
	// ServeStats is a snapshot of a Server's counters.
	ServeStats = serve.Stats
	// EvalCase is one source→target scenario for the serving layer's
	// robustness endpoints.
	EvalCase = serve.EvalCase
	// ServeAttackRequest describes one server-side crafting job.
	ServeAttackRequest = serve.AttackRequest
	// ServeEvaluateRequest describes a server-side fooling-rate sweep
	// over attack spec × filter spec × threat model.
	ServeEvaluateRequest = serve.EvaluateRequest
	// ServeDefendRequest describes one server-side filtering job.
	ServeDefendRequest = serve.DefendRequest
	// ServeDefendResult is the outcome of a server-side filtering job.
	ServeDefendResult = serve.DefendResult
	// Detector is the feature-squeezing discrepancy ensemble: an input is
	// flagged when the model's prediction moves too much under any of the
	// detector's squeezers.
	Detector = detect.Detector
	// DetectScore is one detector verdict: aggregated score, flag and
	// per-squeezer breakdown.
	DetectScore = detect.Score
	// SqueezerScore is one squeezer's contribution to a DetectScore.
	SqueezerScore = detect.SqueezerScore
	// DetectMetric selects the detector's aggregation metric (L1 distance
	// or top-1 disagreement).
	DetectMetric = detect.Metric
	// ROCPoint is one detector operating point (threshold, FPR, TPR).
	ROCPoint = detect.ROCPoint
	// ServeDetectRequest describes one on-demand /v1/detect job.
	ServeDetectRequest = serve.DetectRequest
	// ServeDetectResult is the outcome of a server-side detection job.
	ServeDetectResult = serve.DetectResult
	// ServeDetection is the detector verdict attached to a served
	// Prediction on the detect-then-correct route.
	ServeDetection = serve.Detection
	// ServeChaos injects controlled faults into a Server: delayed
	// batches, killed workers, failed batches.
	ServeChaos = serve.Chaos
	// LaneStats is one admission lane's snapshot (depth, limit, sheds).
	LaneStats = serve.LaneStats
	// CacheStats is the content-addressed result cache's snapshot.
	CacheStats = serve.CacheStats
	// HTTPTimeouts bounds the lifecycle phases of served HTTP
	// connections (slow-loris hardening).
	HTTPTimeouts = serve.HTTPTimeouts
	// Registry is the versioned on-disk model store: immutable
	// name@version entries, each a manifest (architecture spec + weight
	// SHA-256 + lineage) beside its weight blob, with hash-verified loads.
	Registry = registry.Registry
	// RegistryModel is one loaded registry entry: its manifest plus the
	// ready float64 network and float32 serving snapshot.
	RegistryModel = registry.Model
	// RegistrySaveOptions annotates a Registry.Save call.
	RegistrySaveOptions = registry.SaveOptions
	// ModelManifest records one stored version: name, version,
	// architecture, weight hash, parent version and provenance note.
	ModelManifest = registry.Manifest
	// ModelRef names one registry version (Name + Version; empty Version
	// means "latest").
	ModelRef = registry.Ref
	// ArchSpec declaratively describes a buildable network architecture
	// (family "vgg" or "tinycnn" plus geometry), so a manifest alone can
	// reconstruct the network its weights belong to.
	ArchSpec = registry.ArchSpec
	// ModelID is the identity a served pipeline carries: name, version
	// and weight hash (pipeline layer; zero value = anonymous model).
	ModelID = pipeline.ModelID
	// ModelStatus is one serving-table entry's snapshot (/v1/models).
	ModelStatus = serve.ModelStatus
	// Front is the multi-replica front door: a consistent-hash router
	// with health-driven ejection and bounded retries.
	Front = front.Front
	// FrontOptions configures a Front (backends, probing, retries,
	// hedging).
	FrontOptions = front.Options
	// ReplicaHealth is one routed replica's health snapshot.
	ReplicaHealth = front.ReplicaHealth
)

// Threat models of the paper's Fig. 2.
const (
	// TM1: attacker writes directly into the post-filter input buffer.
	TM1 = pipeline.TM1
	// TM2: attacker perturbs the scene before data acquisition.
	TM2 = pipeline.TM2
	// TM3: attacker perturbs acquired data before the filter.
	TM3 = pipeline.TM3
)

// Precision lanes for the serving layer's fast path.
const (
	// PrecisionFloat64 is the reference lane (default): the lane the
	// paper metrics, attacks and training run on.
	PrecisionFloat64 = pipeline.Float64
	// PrecisionFloat32 is the fast lane: a float32 forward pass over
	// once-rounded weights, float64 softmax over exactly-widened logits.
	PrecisionFloat32 = pipeline.Float32
)

// Untargeted is the Goal.Target sentinel for untargeted evasion.
const Untargeted = attacks.Untargeted

// NumClasses is the GTSRB class count (43).
const NumClasses = gtsrb.NumClasses

// PaperScenarios are the paper's five payloads (stop→60, 30→80,
// left→right, right→left, no-entry→60).
var PaperScenarios = experiments.PaperScenarios

// PaperAttacks are the attack names the paper evaluates (lbfgs, fgsm, bim).
var PaperAttacks = attacks.PaperAttacks

// Filters.

// NewLAP builds the paper's local-average filter over the np nearest
// neighbour pixels (np ∈ {4, 8, 16, 32, 64} in the paper's sweeps).
func NewLAP(np int) Filter { return filters.NewLAP(np) }

// NewLAR builds the paper's local-average filter over the disk of radius
// r (r ∈ {1..5} in the paper's sweeps).
func NewLAR(r int) Filter { return filters.NewLAR(r) }

// NewGaussian builds a Gaussian blur filter (library extension).
func NewGaussian(sigma float64) Filter { return filters.NewGaussian(sigma) }

// NewMedian builds a median filter with BPDA backward pass (extension).
func NewMedian(radius int) Filter { return filters.NewMedian(radius) }

// NewBox builds a square box-average filter (extension, for footprint
// ablations against LAR's disk).
func NewBox(radius int) Filter { return filters.NewBox(radius) }

// NewBilateral builds an edge-preserving bilateral filter (extension).
func NewBilateral(radius int, sigmaSpace, sigmaColor float64) Filter {
	return filters.NewBilateral(radius, sigmaSpace, sigmaColor)
}

// NewGrayscale builds the gray-scaling pre-processing stage the paper's
// Section I-C lists (luminance replicated over three channels).
func NewGrayscale() Filter { return filters.Grayscale{} }

// NewNormalize builds the per-image standardization stage.
func NewNormalize(mean, std float64) Filter { return filters.NewNormalize(mean, std) }

// NewHistEq builds the histogram-equalization stage (BPDA backward pass).
func NewHistEq(bins int) Filter { return filters.NewHistEq(bins) }

// NewJPEG builds the JPEG-like DCT-quantization defense (quality 1..100).
func NewJPEG(quality int) Filter { return filters.NewJPEG(quality) }

// NewBitDepth builds the bit-depth squeezing defense (bits 1..16).
func NewBitDepth(bits int) Filter { return filters.NewBitDepth(bits) }

// NewTVDenoise builds the total-variation denoising defense with an
// exact unrolled VJP.
func NewTVDenoise(lambda float64, iters int) Filter { return filters.NewTVDenoise(lambda, iters) }

// NewNLM builds the non-local means denoising defense with an exact VJP.
func NewNLM(h float64, patch, window int) Filter { return filters.NewNLM(h, patch, window) }

// NewRandJPEG builds the SHIELD-style randomized JPEG defense: each 8×8
// block is compressed at a quality drawn uniformly from [qmin, qmax].
func NewRandJPEG(qmin, qmax int, seed uint64) Filter { return filters.NewRandJPEG(qmin, qmax, seed) }

// NewRandResize builds the random resize-and-pad defense with scale
// bounds lo..hi (fractions of the input size in (0, 1]).
func NewRandResize(lo, hi float64, seed uint64) Filter { return filters.NewRandResize(lo, hi, seed) }

// NewRandFlip builds the random horizontal-flip defense with flip
// probability p.
func NewRandFlip(p float64, seed uint64) Filter { return filters.NewRandFlip(p, seed) }

// NewRandNoise builds the additive-Gaussian randomization defense.
func NewRandNoise(sigma float64, seed uint64) Filter { return filters.NewRandNoise(sigma, seed) }

// ReseedFilter returns f with every stochastic stage re-seeded from
// seed (deterministic filters are returned unchanged).
func ReseedFilter(f Filter, seed uint64) Filter { return filters.Reseed(f, seed) }

// IsStochasticFilter reports whether f (or any stage of a chain)
// carries seeded randomness.
func IsStochasticFilter(f Filter) bool { return filters.IsStochastic(f) }

// FilterChain composes filters left to right.
func FilterChain(fs ...Filter) Filter { return filters.Chain(fs) }

// NewNamedFilter builds a default-configured filter from the registry by
// name: bilateral, bitdepth, box, gaussian, grayscale, histeq, jpeg,
// lap, lar, median, nlm, normalize, tv.
func NewNamedFilter(name string) (Filter, error) { return filters.New(name) }

// FilterNames lists the registered filter names.
func FilterNames() []string { return filters.Names() }

// SplitFilterSpecs splits a comma-separated list of filter specs at top
// level, so parameter lists and chain stages inside parentheses survive
// intact.
func SplitFilterSpecs(list string) []string { return filters.SplitSpecs(list) }

// Attacks.

// NewAttack builds a default-configured attack from the library by name:
// lbfgs, fgsm, bim, mim, pgd, cw, deepfool, jsma, onepixel, spsa.
func NewAttack(name string) (Attack, error) { return attacks.New(name) }

// ParseAttack builds a configured attack from a spec string such as
// "pgd(eps=0.03,steps=40)" — the same syntax the -attack CLI flags,
// experiment sweeps and the serving API accept. For every registry
// attack, ParseAttack(atk.Name()) round-trips.
func ParseAttack(spec string) (Attack, error) { return attacks.Parse(spec) }

// SplitAttackSpecs splits a comma-separated list of attack specs at top
// level, so parameter lists inside parentheses survive intact.
func SplitAttackSpecs(list string) []string { return attacks.SplitSpecs(list) }

// ParseAdaptive builds an adaptive crafting mode from a spec string:
// "blind", "bpda", or "eot(draws=N)". For every accepted spec,
// ParseAdaptive(m.Name()) round-trips.
func ParseAdaptive(spec string) (AdaptiveMode, error) { return attacks.ParseAdaptive(spec) }

// AdaptiveModeNames returns the accepted adaptive-mode kinds in
// weakest-to-strongest order.
func AdaptiveModeNames() []string { return attacks.AdaptiveModes() }

// WithBudget attaches an attack work budget to a context: any Generate
// or Execute under it truncates at iteration granularity once the budget
// is spent, returning the best-so-far result flagged Truncated.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return attacks.WithBudget(ctx, b)
}

// WithObserver attaches a per-iteration progress observer to a context.
func WithObserver(ctx context.Context, o Observer) context.Context {
	return attacks.WithObserver(ctx, o)
}

// NewFGSM builds a fast-gradient-sign attack with an explicit L∞ budget.
func NewFGSM(epsilon float64) Attack { return &attacks.FGSM{Epsilon: epsilon} }

// NewBIM builds a basic-iterative-method attack with an explicit budget:
// total L∞ epsilon, per-step alpha and iteration count.
func NewBIM(epsilon, alpha float64, steps int) Attack {
	return &attacks.BIM{Epsilon: epsilon, Alpha: alpha, Steps: steps, EarlyStop: true}
}

// NewLBFGSAttack builds the box-constrained L-BFGS attack with an explicit
// iteration budget per penalty value.
func NewLBFGSAttack(maxIter int) Attack {
	return &attacks.LBFGS{InitialC: 10, CSteps: 6, MaxIter: maxIter}
}

// NewCW builds the Carlini & Wagner L2 attack with confidence margin kappa.
func NewCW(kappa float64) Attack {
	return &attacks.CW{Kappa: kappa, Steps: 150, LR: 0.05, InitialC: 5, BinarySearch: 3}
}

// AttackNames lists the registered attack names.
func AttackNames() []string { return attacks.Names() }

// NewFAdeML wraps a base attack so its optimization models the given
// pre-processing filter — the paper's core contribution.
func NewFAdeML(base Attack, filter Filter) Attack { return attacks.NewFAdeML(base, filter) }

// WrapNetwork adapts a trained network to the attacker-facing Classifier.
func WrapNetwork(net *Network) Classifier { return attacks.NetClassifier{Net: net} }

// Pipeline construction and execution.

// NewPipeline builds a deployed inference pipeline; filter may be nil
// (no pre-processing) and acq may be nil (no capture modeling).
func NewPipeline(net *Network, filter Filter, acq *Acquisition) *Pipeline {
	return pipeline.New(net, filter, acq)
}

// NewAcquisition models the capture stage (gain, sensor noise, 8-bit
// quantization) for Threat Model II. The sensor-noise stream is a pure
// function of (seed, image), so acquisition is safe for concurrent use
// and bit-identical across serial, parallel and served runs.
func NewAcquisition(gain, noiseStd float64, quantize bool, seed uint64) *Acquisition {
	return pipeline.NewAcquisition(gain, noiseStd, quantize, seed)
}

// ParseThreatModel converts a user-supplied string ("2", "tm3", "TM-II",
// …) into a ThreatModel, returning an error for anything else — validate
// CLI flags and request fields with it instead of panicking in Deliver.
func ParseThreatModel(s string) (ThreatModel, error) { return pipeline.ParseThreatModel(s) }

// ParsePrecision converts a user-supplied string ("float32", "f64",
// "single", …) into a Precision, with an error for anything else. The
// empty string selects the float64 reference lane.
func ParsePrecision(s string) (Precision, error) { return pipeline.ParsePrecision(s) }

// ParseFilter builds a configured filter from a spec string such as
// "median(r=2)", "gaussian(sigma=1.5)" or a paren-aware chain
// "chain(median(r=1),histeq(bins=64))" — the same syntax the -filter CLI
// flags, sweep configurations and the serving API accept. "none" and ""
// select no filtering and return (nil, nil), which NewPipeline treats as
// the identity. The legacy KIND:PARAM forms (LAP:32, LAR:3, …) are still
// accepted. For every registry filter, ParseFilter(f.Name()) round-trips.
// Unknown params and out-of-range values are usage-style errors, never
// panics. See FILTERS.md for the full grammar and parameter tables.
func ParseFilter(spec string) (Filter, error) { return filters.Parse(spec) }

// Detection.

// ParseDetector builds a configured discrepancy detector from a spec
// string such as "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)"
// — bare "detect" selects the default ensemble; "none" and "" disable
// detection and return (nil, nil). Squeezer entries use the ParseFilter
// grammar. Malformed specs are usage-style errors, never panics. For
// every detector, ParseDetector(d.Name()) round-trips.
func ParseDetector(spec string) (*Detector, error) { return detect.Parse(spec) }

// DefaultDetector is the paper-guided default ensemble: bit-depth
// squeezing to 4 bits plus a radius-1 median filter, L1 metric,
// threshold 1.0 (recalibrate with Detector.Calibrate or
// Server.CalibrateDetector for a target clean false-positive rate).
func DefaultDetector() *Detector { return detect.Default() }

// DetectionROC sweeps the detector threshold over clean and adversarial
// score samples and returns the operating curve from (0,0) to (1,1).
func DetectionROC(clean, adv []float64) []ROCPoint { return detect.ROC(clean, adv) }

// DetectionAUC is the threshold-free area under the detection ROC —
// the rank statistic P(adversarial score > clean score). 0.5 is chance.
func DetectionAUC(clean, adv []float64) float64 { return detect.AUC(clean, adv) }

// Serving.

// NewServer starts a micro-batching inference service over the deployed
// pipeline: concurrent Predict calls coalesce into batched forwards on a
// pool of weight-sharing network clones; every response is bit-identical
// to a direct Pipeline.Probs call. Serve HTTP with srv.Handler() (see
// cmd/fademl-serve) or call Predict/PredictBatch in-process; stop with
// Close.
func NewServer(p *Pipeline, opts ServeOptions) *Server { return serve.New(p, opts) }

// Serving survivability errors, matchable with errors.Is: an admission
// lane shed the request (429 on the wire) or the server is draining
// ahead of shutdown (503).
var (
	ErrServeOverloaded = serve.ErrOverloaded
	ErrServeDraining   = serve.ErrDraining
)

// Model registry.
//
// The registry breaks the one-global-network assumption: models live in
// a versioned store, pipelines carry their identity, and the server
// serves a table of versions with atomic hot-swap of the default. See
// Example (registry) for the end-to-end flow.

// OpenRegistry opens (creating it if needed) a model registry rooted at
// dir. Entries are immutable once written: Save mints monotonically
// increasing versions (v1, v2, …) and dedupes identical weights;
// Load verifies the weight blob's SHA-256 against the manifest before
// trusting it, and caches the built networks per version.
func OpenRegistry(root string) (*Registry, error) { return registry.Open(root) }

// ParseModelRef parses "name" or "name@version" into a ModelRef.
func ParseModelRef(spec string) (ModelRef, error) { return registry.ParseRef(spec) }

// NewServerFromModel starts a server over a registry-loaded model: the
// served pipeline carries the model's name@version identity, and when
// opts.Registry points at the same store, sibling versions can be
// hot-swapped in under live traffic via srv.Activate (or POST
// /v1/models) without shedding or failing a single request.
func NewServerFromModel(m *RegistryModel, filter Filter, acq *Acquisition, opts ServeOptions) *Server {
	return serve.NewFromModel(m, filter, acq, opts)
}

// NewFront starts the multi-replica front door: a consistent-hash
// router over N fademl-serve backends with health-check-driven ejection
// and readmission, bounded jittered retries on transport failure only,
// and optional hedging. Serve HTTP with f.Handler() (see
// cmd/fademl-serve -front) and stop with Close.
func NewFront(opts FrontOptions) (*Front, error) { return front.New(opts) }

// NewHTTPServer builds an http.Server hardened against slow clients:
// every connection phase — header read, body read, response write,
// keep-alive idle — is bounded (see HTTPTimeouts; the zero value
// selects DefaultHTTPTimeouts).
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	return serve.NewHTTPServer(addr, h, t)
}

// DefaultHTTPTimeouts is the hardened serving default for NewHTTPServer.
func DefaultHTTPTimeouts() HTTPTimeouts { return serve.DefaultHTTPTimeouts() }

// Execute crafts an adversarial example for the scenario source→target and
// measures it against the deployed pipeline under the run's threat model.
// Cancelling ctx or exhausting Run.Budget truncates the attack at
// iteration granularity; the outcome then carries the best-so-far
// adversarial example flagged via AttackerResult.Truncated.
func Execute(ctx context.Context, run Run, clean *Tensor, source, target int) (*Outcome, error) {
	return core.Execute(ctx, run, clean, source, target)
}

// Dataset and environment helpers.

// CanonicalSign renders the canonical (unjittered) image of a GTSRB class.
func CanonicalSign(class, size int) *Tensor { return gtsrb.Canonical(class, size) }

// ClassName returns the GTSRB class name for an id.
func ClassName(id int) string { return gtsrb.ClassName(id) }

// Profiles for NewEnv.
func ProfileTiny() Profile    { return experiments.ProfileTiny() }
func ProfileDefault() Profile { return experiments.ProfileDefault() }
func ProfilePaper() Profile   { return experiments.ProfilePaper() }

// ParseProfile resolves a -profile flag value (tiny, default, paper)
// into a Profile, with an error instead of a panic for bad input.
func ParseProfile(name string) (Profile, error) { return experiments.ParseProfile(name) }

// NewEnv generates the synthetic GTSRB splits and loads or trains the
// profile's VGGNet (cacheDir may be empty to disable the weight cache;
// log may be nil or e.g. os.Stdout).
func NewEnv(p Profile, cacheDir string, log io.Writer) (*Env, error) {
	return experiments.NewEnv(p, cacheDir, log)
}

// Figure runners (see EXPERIMENTS.md for the paper mapping). All of them
// honour ctx: cancellation aborts the sweep with the context error.
// attackNames entries may be registry names or parameterized spec strings.

// RunFig5 regenerates Fig. 5 (attacks under Threat Model I).
func RunFig5(ctx context.Context, env *Env, attackNames []string) (*experiments.Fig5Result, error) {
	return experiments.RunFig5(ctx, env, attackNames)
}

// RunFig6 regenerates Fig. 6 (top-5 accuracy under attack, no filter).
func RunFig6(ctx context.Context, env *Env, attackNames []string) (*experiments.Fig6Result, error) {
	return experiments.RunFig6(ctx, env, attackNames)
}

// RunFig7 regenerates Fig. 7 (filter-blind attacks neutralized by LAP/LAR).
func RunFig7(ctx context.Context, env *Env, opt SweepOptions) (*experiments.Fig7Result, error) {
	return experiments.RunFig7(ctx, env, opt)
}

// RunFig9 regenerates Fig. 9 (FAdeML attacks surviving LAP/LAR).
func RunFig9(ctx context.Context, env *Env, opt SweepOptions) (*experiments.Fig7Result, error) {
	return experiments.RunFig9(ctx, env, opt)
}
