// Command serveload drives concurrent traffic against a fademl-serve
// instance and reports client-side throughput next to the server's own
// micro-batching counters — the quickest way to see request coalescing
// (mean batch occupancy > 1) happen.
//
// Point it at a running server:
//
//	fademl-serve -profile tiny &
//	go run ./examples/serveload -addr http://localhost:8080
//
// or let it self-host an in-process server on a loopback port (no flags
// needed; the tiny-profile model trains or loads from testdata/cache):
//
//	go run ./examples/serveload
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	fademl "repro"
	"repro/internal/gtsrb"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running fademl-serve (empty: self-host in-process)")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 50, "requests per client")
	tm := flag.String("tm", "2", "threat model sent with every request")
	flag.Parse()

	if _, err := fademl.ParseThreatModel(*tm); err != nil {
		log.Fatal(err)
	}

	base := *addr
	if base == "" {
		var shutdown func()
		var err error
		base, shutdown, err = selfHost()
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
	}

	// One wire-ready payload per GTSRB class the tiny profile knows.
	shape := probeShape(base)
	var payloads [][]byte
	for class := 0; class < gtsrb.NumClasses; class += 7 {
		img := gtsrb.Canonical(class, shape[len(shape)-1])
		body, err := json.Marshal(map[string]any{
			"pixels": img.Data(), "shape": img.Shape(), "tm": *tm,
		})
		if err != nil {
			log.Fatal(err)
		}
		payloads = append(payloads, body)
	}

	fmt.Printf("serveload: %d clients × %d requests against %s\n", *clients, *requests, base)
	var ok, failed atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < *requests; r++ {
				body := payloads[(c+r)%len(payloads)]
				resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("done: %d ok, %d failed in %.2fs → %.0f req/s\n",
		ok.Load(), failed.Load(), wall.Seconds(), float64(ok.Load())/wall.Seconds())

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st fademl.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d requests in %d batches — mean occupancy %.2f, p50 %.2fms, p99 %.2fms\n",
		st.Requests, st.Batches, st.MeanBatchOccupancy, st.P50LatencyMs, st.P99LatencyMs)
	if st.MeanBatchOccupancy > 1 {
		fmt.Println("micro-batching is coalescing concurrent requests (occupancy > 1)")
	}
}

// selfHost spins up the tiny-profile pipeline behind an in-process
// fademl.Server on a loopback port and returns its base URL.
func selfHost() (string, func(), error) {
	env, err := fademl.NewEnv(fademl.ProfileTiny(), "testdata/cache", os.Stdout)
	if err != nil {
		return "", nil, err
	}
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	pipe := fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq)
	srv := fademl.NewServer(pipe, fademl.ServeOptions{ClassName: gtsrb.ClassName})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	shutdown := func() {
		httpSrv.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// probeShape asks /v1/healthz for the model's input shape so the payloads
// match whatever profile the server runs.
func probeShape(base string) []int {
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		log.Fatalf("server unreachable at %s: %v", base, err)
	}
	defer resp.Body.Close()
	var health struct {
		InShape []int `json:"in_shape"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || len(health.InShape) == 0 {
		log.Fatalf("bad healthz response from %s: %v", base, err)
	}
	return health.InShape
}
