// Fademl demonstrates the paper's Section IV methodology in detail: the
// explicit Eq. 3 iterative optimization with the Eq. 2 cost trace, and the
// head-to-head between a filter-blind and a filter-aware attacker across
// every LAP/LAR configuration of the paper's sweep.
//
// Run with: go run ./examples/fademl
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	fademl "repro"
	"repro/internal/attacks"
	"repro/internal/filters"
)

func main() {
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	cls := fademl.WrapNetwork(env.Net)
	goal := fademl.Goal{Source: sc.Source, Target: sc.Target}

	// Part 1: the Eq. 3 loop with its Eq. 2 cost trace. The cost measures
	// how differently the unfiltered (TM-I) and filtered (TM-II/III)
	// pipelines see the evolving adversarial example.
	filter := filters.NewLAP(32)
	fa := attacks.NewFAdeML(attacks.NewBIM(), filter)
	res, trace, err := fa.GenerateWithTrace(context.Background(), cls, clean, goal, 16, 0.008, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEq. 2 cost trace f(cost) = Σ top-5 P_TM-I − P_TM-III per iteration:")
	for i, v := range trace.Steps {
		fmt.Printf("  iter %2d: %+.4f\n", i+1, v)
	}
	fmt.Printf("final (filtered) prediction: %s @ %.1f%% — success=%v\n",
		fademl.ClassName(res.PredClass), 100*res.Confidence, res.Success)

	// Part 2: blind vs aware across the paper's full filter sweep.
	fmt.Println("\nblind vs FAdeML across the LAP/LAR sweep (filtered prediction):")
	fmt.Printf("  %-12s  %-28s  %-28s\n", "filter", "filter-blind BIM", "FAdeML-BIM")
	grid := []fademl.Filter{}
	for _, np := range filters.PaperLAPSizes {
		grid = append(grid, filters.NewLAP(np))
	}
	for _, r := range filters.PaperLARRadii {
		grid = append(grid, filters.NewLAR(r))
	}
	blindRes, err := attacks.NewBIM().Generate(context.Background(), cls, clean, goal)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range grid {
		pipe := fademl.NewPipeline(env.Net, f, nil)
		bPred, bConf := pipe.Predict(blindRes.Adversarial, fademl.TM3)

		aw := attacks.NewFAdeML(&attacks.BIM{Epsilon: 0.25, Alpha: 0.02, Steps: 60, EarlyStop: true}, f)
		awRes, err := aw.Generate(context.Background(), cls, clean, goal)
		if err != nil {
			log.Fatal(err)
		}
		aPred, aConf := pipe.Predict(awRes.Adversarial, fademl.TM3)
		fmt.Printf("  %-12s  %-28s  %-28s\n", f.Name(),
			fmt.Sprintf("%s @ %.0f%%", fademl.ClassName(bPred), 100*bConf),
			fmt.Sprintf("%s @ %.0f%%", fademl.ClassName(aPred), 100*aConf))
	}
	fmt.Println("\nexpected shape: blind column reverts to the source class under")
	fmt.Println("strong smoothing; the FAdeML column keeps hitting the target.")
}
