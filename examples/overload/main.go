// Command overload drives a fademl serving deployment past its
// admission capacity on purpose and checks that it survives honestly:
// excess load is shed with 429 + Retry-After (never queued unboundedly),
// interactive latency for admitted requests stays bounded while the bulk
// lane is saturated at ~2× capacity, cache and shed counters show up on
// /metrics, and — in multi-replica mode — a killed replica is ejected,
// traffic flows on, and the replica is readmitted when it recovers.
//
// Self-host a single deliberately small replica (default):
//
//	go run ./examples/overload
//
// Self-host a 3-replica cluster behind the consistent-hash front door,
// killing and reviving one replica mid-overload:
//
//	go run ./examples/overload -replicas 3
//
// -precision float32 points every interactive client at the float32
// fast lane instead of the float64 reference lane; the survivability
// properties must hold on both.
//
// -swap makes the replicas registry-backed (two versions of one model)
// and hot-swaps the default version back and forth mid-overload, in the
// same run as the kill-replica/kill-worker chaos. The PR-6 survivability
// contract must hold through the swaps — zero outright failures, bounded
// interactive p99, honest shedding — and every successful prediction
// must echo a legitimate model version.
//
// The process exits non-zero if any survivability property fails, so CI
// can use it as the overload smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fademl "repro"
	"repro/internal/gtsrb"
)

// lane capacity of the self-hosted replicas: small on purpose so a
// laptop-scale run actually sheds.
const (
	interactiveLimit = 8
	bulkLimit        = 2
	batchStall       = 5 * time.Millisecond // injected per-batch stall: a "slow accelerator"
)

func main() {
	replicas := flag.Int("replicas", 1, "self-hosted replicas (>1 adds the front door and a kill/revive cycle)")
	clients := flag.Int("clients", 0, "concurrent interactive clients (0 auto: 2× aggregate lane capacity)")
	duration := flag.Duration("duration", 3*time.Second, "overload phase length")
	precSpec := flag.String("precision", "float64", "inference lane the interactive clients request: float64 or float32")
	swap := flag.Bool("swap", false, "hot-swap the default model version mid-overload (registry-backed replicas, two versions)")
	flag.Parse()

	prec, err := fademl.ParsePrecision(*precSpec)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := newCluster(*replicas, *swap)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.shutdown()
	if *clients <= 0 {
		*clients = 2 * interactiveLimit * *replicas
	}
	bulkClients := 2 * bulkLimit * *replicas

	size := cluster.size

	// Unique image per request index: the content cache stays on (its
	// counters are part of what this harness checks) without turning the
	// whole run into cache hits.
	payload := func(i int) []byte {
		im := gtsrb.Canonical(i%gtsrb.NumClasses, size).Clone()
		im.ScaleInPlace(1 - float64(i%9973)*1e-7)
		b, _ := json.Marshal(map[string]any{
			"pixels": im.Data(), "shape": im.Shape(), "tm": "2",
			"precision": prec.String(),
		})
		return b
	}

	// Phase 0: prove a cache hit end to end (same bytes twice).
	warm := payload(0)
	for i := 0; i < 2; i++ {
		if code, _, _, err := post(cluster.base, warm); err != nil || code != http.StatusOK {
			log.Fatalf("warm-up predict: code %d err %v", code, err)
		}
	}

	// Phase 1: unloaded baseline, sequential.
	fmt.Printf("overload: baseline (sequential, per-batch stall %v)...\n", batchStall)
	var baseline []time.Duration
	for i := 1; i <= 40; i++ {
		start := time.Now()
		code, _, _, err := post(cluster.base, payload(i))
		if err != nil || code != http.StatusOK {
			log.Fatalf("baseline predict %d: code %d err %v", i, code, err)
		}
		baseline = append(baseline, time.Since(start))
	}
	baseP99 := percentile(baseline, 0.99)
	fmt.Printf("  predict p50 %v  p99 %v\n", percentile(baseline, 0.50), baseP99)

	// Phase 2: overload. ~2× interactive capacity in closed-loop predict
	// clients, 2× bulk capacity in attack clients, and — mid-phase — a
	// killed inference worker (single replica) or a killed-and-revived
	// replica (cluster mode).
	fmt.Printf("overload: %d interactive + %d bulk clients for %v...\n", *clients, bulkClients, *duration)
	var (
		ok429, okPred, failed atomic.Uint64
		missingRetryAfter     atomic.Uint64
		bulkShed, bulkOK      atomic.Uint64
		badModel              atomic.Uint64
		latMu                 sync.Mutex
		latencies             []time.Duration
		modelMu               sync.Mutex
		seenModels            = map[string]bool{}
	)
	validModel := map[string]bool{}
	for _, m := range cluster.swapModels {
		validModel[m] = true
	}
	stopAt := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stopAt); i++ {
				start := time.Now()
				code, hdr, model, err := post(cluster.base, payload(1000+c*100000+i))
				switch {
				case err != nil:
					failed.Add(1)
				case code == http.StatusOK:
					okPred.Add(1)
					latMu.Lock()
					latencies = append(latencies, time.Since(start))
					latMu.Unlock()
					if *swap {
						if !validModel[model] {
							badModel.Add(1)
						} else {
							modelMu.Lock()
							seenModels[model] = true
							modelMu.Unlock()
						}
					}
				case code == http.StatusTooManyRequests:
					ok429.Add(1)
					if hdr.Get("Retry-After") == "" {
						missingRetryAfter.Add(1)
					}
					time.Sleep(2 * time.Millisecond) // honour the shed: back off
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	for c := 0; c < bulkClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{
				"attack": "pgd(eps=0.05,steps=400)", "source": c % gtsrb.NumClasses,
			})
			for time.Now().Before(stopAt) {
				resp, err := http.Post(cluster.base+"/v1/attack", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					bulkShed.Add(1)
					time.Sleep(5 * time.Millisecond)
				} else {
					bulkOK.Add(1)
				}
			}
		}(c)
	}

	// -swap: flip the default model version on every replica throughout
	// the overload phase — keep=false, so each flip retires and drains
	// the outgoing version and the next flip reloads it from the
	// registry. This runs concurrently with the kill chaos below.
	var swapErrs, swapsDone atomic.Uint64
	if *swap {
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := *duration / 8
			if interval < 50*time.Millisecond {
				interval = 50 * time.Millisecond
			}
			for i := 0; ; i++ {
				time.Sleep(interval)
				if !time.Now().Before(stopAt) {
					return
				}
				target := cluster.swapModels[(i+1)%len(cluster.swapModels)]
				for _, srv := range cluster.servers {
					if _, err := srv.Activate(target, false); err != nil {
						swapErrs.Add(1)
					} else {
						swapsDone.Add(1)
					}
				}
				fmt.Printf("  swap: default -> %s\n", target)
			}
		}()
	}

	// Fault injection at one third of the phase; recovery at two thirds.
	time.AfterFunc(*duration/3, cluster.injectFault)
	time.AfterFunc(2**duration/3, cluster.recoverFault)
	wg.Wait()

	loadedP99 := percentile(latencies, 0.99)
	fmt.Printf("  predict: %d ok, %d shed (429), %d failed — p99 %v\n", okPred.Load(), ok429.Load(), failed.Load(), loadedP99)
	fmt.Printf("  attack:  %d ok, %d shed (429)\n", bulkOK.Load(), bulkShed.Load())

	// Lane and cache counters live on the replicas; the front door's
	// /metrics is its own routing telemetry. Scrape every backend and sum.
	var sb strings.Builder
	for _, b := range cluster.backends {
		sb.WriteString(fetch(b + "/metrics"))
	}
	metrics := sb.String()
	for _, name := range []string{
		`fademl_lane_admitted_total{lane="interactive"}`,
		`fademl_lane_shed_total{lane="interactive"}`,
		`fademl_lane_admitted_total{lane="bulk"}`,
		`fademl_lane_shed_total{lane="bulk"}`,
		"fademl_cache_hits_total",
		"fademl_cache_misses_total",
	} {
		fmt.Printf("  %s %g\n", name, metricValue(metrics, name))
	}
	if *swap {
		fmt.Printf("  fademl_model_swaps_total %g\n", metricValue(metrics, "fademl_model_swaps_total"))
	}

	// Survivability verdict.
	bound := 5 * baseP99
	if floor := 500 * time.Millisecond; bound < floor {
		bound = floor
	}
	// Hot-swaps with keep=false drain the retired version's queue before
	// releasing it, so admitted requests caught behind a drain pay extra
	// tail latency. The swap contract is p99 ≤ 2× the steady-state bound.
	if *swap {
		bound *= 2
	}
	fail := false
	check := func(cond bool, format string, args ...any) {
		if !cond {
			fail = true
			fmt.Printf("FAIL: "+format+"\n", args...)
		}
	}
	check(ok429.Load() > 0, "2× overload produced no interactive 429s")
	check(missingRetryAfter.Load() == 0, "%d sheds lacked a Retry-After header", missingRetryAfter.Load())
	check(bulkShed.Load() > 0, "2× bulk overload produced no bulk 429s")
	check(failed.Load() == 0, "%d interactive requests failed outright", failed.Load())
	check(okPred.Load() > 0 && loadedP99 <= bound,
		"interactive p99 %v under overload exceeds bound %v (baseline %v)", loadedP99, bound, baseP99)
	check(strings.Contains(metrics, `fademl_lane_shed_total{lane="interactive"}`), "/metrics missing interactive shed counter")
	check(strings.Contains(metrics, "fademl_cache_hits_total"), "/metrics missing cache counters")
	check(metricValue(metrics, `fademl_lane_shed_total{lane="interactive"}`) > 0, "interactive shed counter is zero on /metrics")
	check(metricValue(metrics, "fademl_cache_hits_total") > 0, "cache hit counter is zero on /metrics despite a warm repeat")
	if *swap {
		check(swapErrs.Load() == 0, "%d hot-swap activations failed under load", swapErrs.Load())
		check(swapsDone.Load() > 0, "swap phase performed no activations")
		check(badModel.Load() == 0, "%d responses echoed an unknown model version", badModel.Load())
		modelMu.Lock()
		nSeen := len(seenModels)
		modelMu.Unlock()
		check(nSeen >= 2, "hot-swaps never surfaced both versions to clients (saw %d)", nSeen)
		check(metricValue(metrics, "fademl_model_swaps_total") > 0, "model swap counter is zero on /metrics")
	}
	cluster.verdict(check)

	if fail {
		os.Exit(1)
	}
	fmt.Println("overload: all survivability checks passed")
}

// cluster is the self-hosted deployment under test: one replica, or N
// replicas behind a front door with a killable member.
type cluster struct {
	base       string
	backends   []string // replica base URLs (lane/cache metrics live here)
	size       int      // model input side length; payloads must match
	servers    []*fademl.Server
	https      []*http.Server
	chaos      []*fademl.ServeChaos
	front      *fademl.Front
	killable   *killSwitch
	swapModels []string // -swap: the two registry versions replicas flip between
	close      []func()
}

// killSwitch wraps a replica's handler; down means hijack-and-close
// every connection — what a crashed process looks like on the wire —
// while the listener survives so the replica can "come back".
type killSwitch struct {
	h    http.Handler
	down atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	k.h.ServeHTTP(w, r)
}

func newCluster(n int, swap bool) (*cluster, error) {
	env, err := fademl.NewEnv(fademl.ProfileTiny(), "testdata/cache", os.Stdout)
	if err != nil {
		return nil, err
	}
	c := &cluster{size: env.Profile.Size}

	// -swap: publish the trained network as signnet@v1 and a fresh
	// same-architecture init as signnet@v2 into a throwaway registry.
	// Replicas then serve by model identity and hot-swap between the two
	// versions while the kill chaos runs.
	var reg *fademl.Registry
	var active *fademl.RegistryModel
	if swap {
		dir, err := os.MkdirTemp("", "overload-registry")
		if err != nil {
			return nil, err
		}
		c.close = append(c.close, func() { os.RemoveAll(dir) })
		if reg, err = fademl.OpenRegistry(dir); err != nil {
			return nil, err
		}
		arch := env.Profile.VGGArch()
		if _, err := reg.Save("signnet", env.Net, arch, fademl.RegistrySaveOptions{Note: "overload harness, trained"}); err != nil {
			return nil, err
		}
		alt, err := arch.Build()
		if err != nil {
			return nil, err
		}
		if _, err := reg.Save("signnet", alt, arch, fademl.RegistrySaveOptions{Note: "overload harness, fresh init"}); err != nil {
			return nil, err
		}
		if active, err = reg.Load(fademl.ModelRef{Name: "signnet", Version: "v1"}); err != nil {
			return nil, err
		}
		c.swapModels = []string{"signnet@v1", "signnet@v2"}
	}

	backends := make([]string, 0, n)
	for i := 0; i < n; i++ {
		chaos := &fademl.ServeChaos{}
		chaos.SetBatchDelay(batchStall)
		acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
		opts := fademl.ServeOptions{
			Workers: 2, MaxBatch: 8, MaxWait: time.Millisecond,
			ClassName: gtsrb.ClassName, AttackWorkers: 1,
			InteractiveLimit: interactiveLimit, BulkLimit: bulkLimit,
			PredictDeadline: 5 * time.Second,
			Render:          gtsrb.Canonical,
			Chaos:           chaos,
			Registry:        reg,
		}
		var srv *fademl.Server
		if swap {
			srv = fademl.NewServerFromModel(active, fademl.NewLAP(32), acq, opts)
		} else {
			pipe := fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq)
			srv = fademl.NewServer(pipe, opts)
		}
		var handler http.Handler = srv.Handler()
		if n > 1 && i == 0 {
			c.killable = &killSwitch{h: handler}
			handler = c.killable
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := fademl.NewHTTPServer("", handler, fademl.HTTPTimeouts{})
		go hs.Serve(ln)
		c.servers = append(c.servers, srv)
		c.https = append(c.https, hs)
		c.chaos = append(c.chaos, chaos)
		backends = append(backends, "http://"+ln.Addr().String())
	}
	c.backends = backends
	if n == 1 {
		c.base = backends[0]
		return c, nil
	}
	// Probe cadence is deliberately not too aggressive: a 50ms probe
	// timeout falsely ejects healthy-but-loaded replicas whose healthz
	// answer queues behind the batch stall.
	f, err := fademl.NewFront(fademl.FrontOptions{
		Backends:      backends,
		ProbeInterval: 200 * time.Millisecond,
		EjectAfter:    3,
	})
	if err != nil {
		return nil, err
	}
	c.front = f
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := fademl.NewHTTPServer("", f.Handler(), fademl.HTTPTimeouts{})
	go hs.Serve(ln)
	c.https = append(c.https, hs)
	c.base = "http://" + ln.Addr().String()
	return c, nil
}

// injectFault kills something mid-overload: replica 0 in cluster mode,
// one inference worker on the lone replica otherwise.
func (c *cluster) injectFault() {
	if c.killable != nil {
		fmt.Println("  chaos: killing replica 0")
		c.killable.down.Store(true)
		return
	}
	fmt.Println("  chaos: killing 1 of 2 inference workers")
	c.chaos[0].KillWorkers(1)
}

func (c *cluster) recoverFault() {
	if c.killable != nil {
		fmt.Println("  chaos: reviving replica 0")
		c.killable.down.Store(false)
	}
}

// verdict adds the cluster-mode assertions: the killed replica was
// ejected and then readmitted.
func (c *cluster) verdict(check func(bool, string, ...any)) {
	if c.front == nil {
		return
	}
	snap := c.front.Snapshot()
	check(snap[0].Ejections > 0, "killed replica was never ejected: %+v", snap[0])
	check(snap[0].Healthy, "revived replica was not readmitted: %+v", snap[0])
	for _, r := range snap {
		fmt.Printf("  replica %s healthy=%v proxied=%d errs=%d ejections=%d\n",
			r.URL, r.Healthy, r.Proxied, r.Errs, r.Ejections)
	}
}

// shutdown drains every replica the way production would: refuse new
// work, drain the listener, stop the batcher.
func (c *cluster) shutdown() {
	if c.front != nil {
		c.front.Close()
	}
	for _, srv := range c.servers {
		srv.BeginDrain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, hs := range c.https {
		hs.Shutdown(ctx)
	}
	for _, srv := range c.servers {
		srv.Close()
	}
	for _, f := range c.close {
		f()
	}
}

// post sends one predict request; returns status code, headers and the
// model identity the response claims to have been served by (empty for
// non-200 responses and pre-registry servers).
func post(base string, body []byte) (int, http.Header, string, error) {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	var echo struct {
		Model string `json:"model"`
	}
	json.NewDecoder(resp.Body).Decode(&echo)
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header, echo.Model, nil
}

func fetch(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// metricValue sums a sample across Prometheus text output — which here
// may be the concatenation of several replicas' scrapes.
func metricValue(text, name string) float64 {
	total, seen := 0.0, false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(line[len(name)+1:], "%g", &v)
			total += v
			seen = true
		}
	}
	if !seen {
		return -1
	}
	return total
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}
