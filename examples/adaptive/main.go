// Adaptive demonstrates honest robustness evaluation of a randomized
// defense: the same untargeted BIM is crafted blind (ignoring the
// deployed chain), with BPDA (through the chain's declared VJPs), and
// with EOT (averaging gradients over fresh draws of the chain's
// randomness) against a random resize-and-pad defense — and the fooling
// rates are compared. A defense that only looks robust against the
// blind attacker is obfuscating gradients, not defending.
//
// Run with: go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	fademl "repro"
)

func main() {
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	// The deployed defense: every prediction resizes the input to a
	// random scale in [0.7, 0.9] and pastes it at a random offset. The
	// draw is a pure function of (seed, image), so the server is
	// deterministic per input while remaining unpredictable to an
	// attacker that never models it.
	deployed, err := fademl.ParseFilter("randresize(lo=0.7,hi=0.9,seed=7)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed randomized defense: %s (stochastic: %v)\n\n",
		deployed.Name(), fademl.IsStochasticFilter(deployed))

	pipe := fademl.NewPipeline(env.Net, deployed, nil)
	atk, err := fademl.ParseAttack("bim(eps=0.12,alpha=0.02,steps=20)")
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	modes := []string{"blind", "bpda", "eot(draws=8)"}
	rates := make([]float64, len(modes))
	for mi, spec := range modes {
		mode, err := fademl.ParseAdaptive(spec)
		if err != nil {
			log.Fatal(err)
		}
		fooled, total := 0, 0
		for _, sc := range fademl.PaperScenarios[:3] {
			clean := sc.CleanImage(env.Profile.Size)
			out, err := fademl.Execute(ctx, fademl.Run{
				Pipeline: pipe,
				Attack:   atk,
				Adaptive: mode,
				Seed:     1,
				TM:       fademl.TM3,
			}, clean, sc.Source, fademl.Untargeted)
			if err != nil {
				log.Fatal(err)
			}
			total++
			// Untargeted success on the deployed view: the defense no
			// longer recovers the true class.
			if out.Comparison.TMXPred != sc.Source {
				fooled++
			}
		}
		rates[mi] = float64(fooled) / float64(total)
		fmt.Printf("  %-14s fooling rate %3.0f%%  ", spec, 100*rates[mi])
		for j := 0; j < int(rates[mi]*30); j++ {
			fmt.Print("█")
		}
		fmt.Println()
	}

	best := rates[1]
	if rates[2] > best {
		best = rates[2]
	}
	fmt.Printf("\nblind → best adaptive gap: %+.0f points\n", 100*(best-rates[0]))
	fmt.Println("a large gap means the defense was only hiding its gradients —")
	fmt.Println("report adaptive numbers, not blind ones.")
}
