// Stopsign walks the paper's scenario 1 (stop → 60 km/h) across all three
// threat models of Fig. 2, writing PNGs of the clean image, the
// adversarial image, the amplified noise, and what the DNN actually sees
// after the pre-processing filter.
//
// Run with: go run ./examples/stopsign
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	fademl "repro"
	"repro/internal/imageio"
	"repro/internal/tensor"
)

func main() {
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	filter := fademl.NewLAP(8)
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 99)
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)

	outDir := "stopsign-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Filter-aware budget: LAP smoothing attenuates the perturbation, so
	// the FAdeML attacker spends more than the bare-network default. The
	// run is budgeted — a 30s deadline and a generous query cap — so a
	// slow machine still produces the (possibly Truncated) best-so-far
	// example instead of hanging.
	atk, err := fademl.ParseAttack("bim(eps=0.25,alpha=0.02,steps=60)")
	if err != nil {
		log.Fatal(err)
	}
	fademlAtk := fademl.NewFAdeML(atk, filter)
	cls := fademl.WrapNetwork(env.Net)
	ctx := fademl.WithBudget(context.Background(), fademl.Budget{
		MaxQueries: 2000,
		Deadline:   time.Now().Add(30 * time.Second),
	})
	res, err := fademlAtk.Generate(ctx, cls, clean, fademl.Goal{Source: sc.Source, Target: sc.Target})
	if err != nil {
		log.Fatal(err)
	}
	if res.Truncated {
		fmt.Println("note: attack budget hit — using the best-so-far example")
	}

	// The three threat models: where does the adversarial image enter?
	fmt.Println("\nFAdeML adversarial stop sign across threat models:")
	for _, tm := range []fademl.ThreatModel{fademl.TM1, fademl.TM2, fademl.TM3} {
		pred, conf := pipe.Predict(res.Adversarial, tm)
		fmt.Printf("  %-6v → %s @ %.1f%%\n", tm, fademl.ClassName(pred), 100*conf)
	}

	// Amplified noise for visualization: centered at gray, 8× gain.
	noiseViz := res.Noise.Clone()
	noiseViz.ScaleInPlace(8)
	noiseViz.AddScalar(0.5)
	noiseViz.Clamp01()

	saves := map[string]*tensor.Tensor{
		"clean.png":    clean,
		"adv.png":      res.Adversarial,
		"noise8x.png":  noiseViz,
		"filtered.png": pipe.Deliver(res.Adversarial, fademl.TM3),
	}
	for name, img := range saves {
		path := filepath.Join(outDir, name)
		if err := imageio.SavePNG(img, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Printf("\nadversarial noise: |L∞|=%.3f, |L2|=%.3f (clean image |L2|=%.1f)\n",
		res.Noise.LInfNorm(), res.Noise.L2Norm(), clean.L2Norm())
	fmt.Println("\nASCII preview of what the DNN sees after filtering:")
	fmt.Println(imageio.ASCII(pipe.Deliver(res.Adversarial, fademl.TM3)))
}
