// Stopsign walks the paper's scenario 1 (stop → 60 km/h) across all three
// threat models of Fig. 2, writing PNGs of the clean image, the
// adversarial image, the amplified noise, and what the DNN actually sees
// after the pre-processing filter.
//
// Run with: go run ./examples/stopsign
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	fademl "repro"
	"repro/internal/imageio"
	"repro/internal/tensor"
)

func main() {
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	filter := fademl.NewLAP(8)
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 99)
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)

	outDir := "stopsign-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Filter-aware budget: LAP smoothing attenuates the perturbation, so
	// the FAdeML attacker spends more than the bare-network default.
	atk := fademl.NewBIM(0.25, 0.02, 60)
	fademlAtk := fademl.NewFAdeML(atk, filter)
	cls := fademl.WrapNetwork(env.Net)
	res, err := fademlAtk.Generate(cls, clean, fademl.Goal{Source: sc.Source, Target: sc.Target})
	if err != nil {
		log.Fatal(err)
	}

	// The three threat models: where does the adversarial image enter?
	fmt.Println("\nFAdeML adversarial stop sign across threat models:")
	for _, tm := range []fademl.ThreatModel{fademl.TM1, fademl.TM2, fademl.TM3} {
		pred, conf := pipe.Predict(res.Adversarial, tm)
		fmt.Printf("  %-6v → %s @ %.1f%%\n", tm, fademl.ClassName(pred), 100*conf)
	}

	// Amplified noise for visualization: centered at gray, 8× gain.
	noiseViz := res.Noise.Clone()
	noiseViz.ScaleInPlace(8)
	noiseViz.AddScalar(0.5)
	noiseViz.Clamp01()

	saves := map[string]*tensor.Tensor{
		"clean.png":    clean,
		"adv.png":      res.Adversarial,
		"noise8x.png":  noiseViz,
		"filtered.png": pipe.Deliver(res.Adversarial, fademl.TM3),
	}
	for name, img := range saves {
		path := filepath.Join(outDir, name)
		if err := imageio.SavePNG(img, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Printf("\nadversarial noise: |L∞|=%.3f, |L2|=%.3f (clean image |L2|=%.1f)\n",
		res.Noise.LInfNorm(), res.Noise.L2Norm(), clean.L2Norm())
	fmt.Println("\nASCII preview of what the DNN sees after filtering:")
	fmt.Println(imageio.ASCII(pipe.Deliver(res.Adversarial, fademl.TM3)))
}
