// Quickstart: train a small model on the synthetic GTSRB, run a classical
// FGSM attack, and watch a LAP smoothing filter neutralize it — then run
// the same attack filter-aware (FAdeML) and watch it survive.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	fademl "repro"
)

func main() {
	// 1. Dataset + trained model (default profile: ~1 minute to train on
	//    one core; weights are cached under testdata/cache, so repeat
	//    runs start in seconds).
	fmt.Println("== FAdeML quickstart ==")
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean test accuracy: top1 %.1f%%, top5 %.1f%%\n\n",
		100*env.CleanTop1, 100*env.CleanTop5)

	// 2. The deployed system: VGGNet behind a LAP(8) noise filter.
	filter := fademl.NewLAP(8)
	pipe := fademl.NewPipeline(env.Net, filter, nil)

	// 3. Scenario 1 of the paper: make a stop sign read as "60 km/h".
	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	fmt.Printf("scenario: %s (%s → %s)\n\n", sc.Name, sc.SourceName(), sc.TargetName())

	// 4. Classical, filter-blind BIM attack (Section III of the paper):
	//    a modest budget fools the bare DNN under TM-I.
	blind, err := fademl.Execute(fademl.Run{
		Pipeline:    pipe,
		Attack:      fademl.NewBIM(0.06, 0.006, 30),
		FilterAware: false,
		TM:          fademl.TM3,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter-blind attack:")
	fmt.Println("  " + blind.Comparison.String())

	// 5. The same attack, filter-aware (Section IV: FAdeML). The attacker
	//    models the smoothing filter and spends a larger budget — the
	//    filter attenuates whatever perturbation reaches the DNN.
	aware, err := fademl.Execute(fademl.Run{
		Pipeline:    pipe,
		Attack:      fademl.NewBIM(0.25, 0.02, 60),
		FilterAware: true,
		TM:          fademl.TM3,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter-aware attack (FAdeML):")
	fmt.Println("  " + aware.Comparison.String())

	fmt.Println()
	switch {
	case blind.Comparison.Neutralized && aware.Comparison.SurvivedFilter:
		fmt.Println("result: the filter neutralized the classical attack;")
		fmt.Println("        FAdeML survived it — the paper's headline, reproduced.")
	case aware.Comparison.SurvivedFilter:
		fmt.Println("result: FAdeML survived the filter.")
	default:
		fmt.Println("result: inconclusive at this tiny scale — try the default profile.")
	}
}
