// Quickstart: train a small model on the synthetic GTSRB, run a classical
// FGSM attack, and watch a LAP smoothing filter neutralize it — then run
// the same attack filter-aware (FAdeML) and watch it survive, and finally
// re-run it under a hard query budget to see the v2 API's truncation
// contract in action.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	fademl "repro"
)

func main() {
	// Every attack execution is context-aware: cancelling ctx (or
	// exhausting a Run.Budget) truncates the optimization at the next
	// iteration boundary and returns the best-so-far example.
	ctx := context.Background()

	// 1. Dataset + trained model (default profile: ~1 minute to train on
	//    one core; weights are cached under testdata/cache, so repeat
	//    runs start in seconds).
	fmt.Println("== FAdeML quickstart ==")
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean test accuracy: top1 %.1f%%, top5 %.1f%%\n\n",
		100*env.CleanTop1, 100*env.CleanTop5)

	// 2. The deployed system: VGGNet behind a LAP(8) noise filter.
	filter := fademl.NewLAP(8)
	pipe := fademl.NewPipeline(env.Net, filter, nil)

	// 3. Scenario 1 of the paper: make a stop sign read as "60 km/h".
	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	fmt.Printf("scenario: %s (%s → %s)\n\n", sc.Name, sc.SourceName(), sc.TargetName())

	// 4. Classical, filter-blind BIM attack (Section III of the paper):
	//    a modest budget fools the bare DNN under TM-I. Attacks are
	//    declarative spec strings — the same syntax the CLI tools and the
	//    serving API accept.
	blindAtk, err := fademl.ParseAttack("bim(eps=0.06,alpha=0.006,steps=30)")
	if err != nil {
		log.Fatal(err)
	}
	blind, err := fademl.Execute(ctx, fademl.Run{
		Pipeline:    pipe,
		Attack:      blindAtk,
		FilterAware: false,
		TM:          fademl.TM3,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter-blind attack:")
	fmt.Println("  " + blind.Comparison.String())

	// 5. The same attack, filter-aware (Section IV: FAdeML). The attacker
	//    models the smoothing filter and spends a larger budget — the
	//    filter attenuates whatever perturbation reaches the DNN.
	awareAtk, err := fademl.ParseAttack("bim(eps=0.25,alpha=0.02,steps=60)")
	if err != nil {
		log.Fatal(err)
	}
	aware, err := fademl.Execute(ctx, fademl.Run{
		Pipeline:    pipe,
		Attack:      awareAtk,
		FilterAware: true,
		TM:          fademl.TM3,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter-aware attack (FAdeML):")
	fmt.Println("  " + aware.Comparison.String())

	// 6. The same filter-aware run under a hard budget: 40 classifier
	//    evaluations is far less than the ~120 the full run spends, so
	//    the attack is cut short and flagged Truncated — but it still
	//    returns its best-so-far adversarial example instead of erroring.
	budgeted, err := fademl.Execute(ctx, fademl.Run{
		Pipeline:    pipe,
		Attack:      awareAtk,
		FilterAware: true,
		TM:          fademl.TM3,
		Budget:      fademl.Budget{MaxQueries: 40},
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budgeted FAdeML run (MaxQueries=40): %d queries, %d iterations, truncated=%v\n",
		budgeted.AttackerResult.Queries, budgeted.AttackerResult.Iterations,
		budgeted.AttackerResult.Truncated)
	fmt.Println("  " + budgeted.Comparison.String())

	fmt.Println()
	switch {
	case blind.Comparison.Neutralized && aware.Comparison.SurvivedFilter:
		fmt.Println("result: the filter neutralized the classical attack;")
		fmt.Println("        FAdeML survived it — the paper's headline, reproduced.")
	case aware.Comparison.SurvivedFilter:
		fmt.Println("result: FAdeML survived the filter.")
	default:
		fmt.Println("result: inconclusive at this tiny scale — try the default profile.")
	}
}
