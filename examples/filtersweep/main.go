// Filtersweep reproduces the Fig. 7 accuracy curves interactively: top-5
// accuracy of the deployed pipeline versus filter strength (LAP np sweep
// and LAR radius sweep), with and without a filter-blind BIM attack on the
// input stream — showing both the neutralization of the attack and the
// inverted-U accuracy profile the paper reports.
//
// Run with: go run ./examples/filtersweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	fademl "repro"
)

func main() {
	env, err := fademl.NewEnv(fademl.ProfileDefault(), "testdata/cache", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	sc := fademl.PaperScenarios[0] // stop → 60 km/h
	fmt.Printf("\nsweeping filters for %s (top-5 accuracy over %d test images)\n\n",
		sc, env.Profile.AttackEvalSamples)

	res, err := fademl.RunFig7(context.Background(), env, fademl.SweepOptions{
		Scenarios:      []fademl.Scenario{sc},
		AttackNames:    []string{"bim"},
		IncludeCurves:  true,
		CurveScenarios: []fademl.Scenario{sc},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())

	// Terminal bar chart of the BIM curve across the full grid.
	for _, curve := range res.Curves {
		if curve.AttackName != "BIM" {
			continue
		}
		fmt.Printf("BIM-attacked stream, top-5 accuracy by filter:\n")
		for i, name := range curve.FilterNames {
			bar := ""
			for j := 0; j < int(curve.Top5[i]*40); j++ {
				bar += "█"
			}
			fmt.Printf("  %-12s %5.1f%% %s\n", name, 100*curve.Top5[i], bar)
		}
	}
	fmt.Printf("\nneutralization rate over panels: %.0f%%\n", 100*res.NeutralizationRate())
}
